// Carter–Wegman universal hashing over the Mersenne prime 2^61 - 1.
//
// The paper (Section 2.4) assumes a universal family H = {h : [k] -> [l]}
// with Pr[h(a) = h(b)] = 1/l for a != b, representable in O(log k) bits.
// h(x) = ((a*x + b) mod p) mod r with p = 2^61 - 1, a in [1, p-1],
// b in [0, p-1] is the textbook such family ([LRSC01]); it is in fact
// 2-wise independent, which is what Lemma 2 (collision-freeness of sampled
// ids) and Algorithm 2's variance analysis use.
#ifndef L1HH_HASH_UNIVERSAL_HASH_H_
#define L1HH_HASH_UNIVERSAL_HASH_H_

#include <cstdint>

#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class UniversalHash {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  UniversalHash() = default;
  UniversalHash(uint64_t a, uint64_t b, uint64_t range)
      : a_(a), b_(b), range_(range) {}

  /// Draws a function uniformly from the family with the given range.
  static UniversalHash Draw(Rng& rng, uint64_t range);

  uint64_t operator()(uint64_t x) const {
    return ModPrime(MulModPrime(a_, ModPrime(x)) + b_) % range_;
  }

  uint64_t range() const { return range_; }

  /// Bits needed to describe a member of the family: a and b (2 * 61) plus
  /// the range.  This is the O(log n) seed cost the paper charges per hash
  /// function.
  int SeedBits() const { return 2 * 61 + BitWidth(range_); }

  void Serialize(BitWriter& out) const;
  static UniversalHash Deserialize(BitReader& in);

  bool operator==(const UniversalHash& other) const {
    return a_ == other.a_ && b_ == other.b_ && range_ == other.range_;
  }

 private:
  // x mod (2^61 - 1) for x < 2^62 + p (i.e., any sum of two reduced values).
  static uint64_t ModPrime(uint64_t x) {
    uint64_t r = (x & kPrime) + (x >> 61);
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  // (x * y) mod (2^61 - 1) via 128-bit product.
  static uint64_t MulModPrime(uint64_t x, uint64_t y) {
    const __uint128_t prod = static_cast<__uint128_t>(x) * y;
    const uint64_t lo = static_cast<uint64_t>(prod & kPrime);
    const uint64_t hi = static_cast<uint64_t>(prod >> 61);
    return ModPrime(lo + hi);
  }

  uint64_t a_ = 1;
  uint64_t b_ = 0;
  uint64_t range_ = 1;
};

}  // namespace l1hh

#endif  // L1HH_HASH_UNIVERSAL_HASH_H_
