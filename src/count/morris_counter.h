// Morris approximate counting ([Mor78], analyzed by Flajolet [Fla85]).
//
// A Morris counter stores only an exponent c and increments it with
// probability base^{-c}; the estimate (base^c - 1) / (base - 1) is unbiased.
// State is O(log log m) bits for a stream of length m — this is the
// `log log m` term in every row of the paper's Table 1, and the machinery
// behind Theorem 7's unknown-stream-length algorithms: "the Morris counter
// outputs correctly up to a factor of four at every position" after
// amplification with k = 2 log2(log2 m / delta) extra bits.
#ifndef L1HH_COUNT_MORRIS_COUNTER_H_
#define L1HH_COUNT_MORRIS_COUNTER_H_

#include <cstdint>
#include <vector>

#include "util/bit_stream.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace l1hh {

class MorrisCounter {
 public:
  /// `base` > 1 controls the accuracy/space trade-off: relative standard
  /// error is ~sqrt((base - 1) / 2) per counter.  base = 2 is the classic
  /// Morris counter.
  explicit MorrisCounter(double base = 2.0) : base_(base) {}

  /// Returns true iff the stored exponent changed (rare: O(log m) times
  /// over a length-m stream), letting callers do boundary checks only on
  /// change without extra state.
  bool Increment(Rng& rng) {
    // Increment with probability base^{-exponent}.
    if (exponent_ == 0 || rng.UniformDouble() < Pow(-exponent_)) {
      ++exponent_;
      return true;
    }
    return false;
  }

  /// Unbiased estimate of the number of increments.
  double Estimate() const {
    if (exponent_ == 0) return 0.0;
    return (Pow(exponent_) - 1.0) / (base_ - 1.0);
  }

  uint32_t exponent() const { return exponent_; }

  /// Bits of state: the exponent only (log log m for base 2).
  int SpaceBits() const { return BitWidth(exponent_); }

  void Serialize(BitWriter& out) const { out.WriteCounter(exponent_); }
  void Deserialize(BitReader& in) {
    exponent_ = static_cast<uint32_t>(in.ReadCounter());
  }

 private:
  double Pow(int e) const {
    double r = 1.0;
    double b = e >= 0 ? base_ : 1.0 / base_;
    int n = e >= 0 ? e : -e;
    while (n > 0) {
      if (n & 1) r *= b;
      b *= b;
      n >>= 1;
    }
    return r;
  }

  double base_;
  uint32_t exponent_ = 0;
};

/// k independent Morris counters, estimate = mean.  Choosing
/// k = 2 log2(log2(m) / delta) (paper, proof of Theorem 7) makes the counter
/// correct within a constant factor at every power-of-two position of the
/// stream simultaneously with probability 1 - delta.
class MorrisCounterEnsemble {
 public:
  MorrisCounterEnsemble(int k, double base, uint64_t seed)
      : rng_(seed), counters_(static_cast<size_t>(k), MorrisCounter(base)) {}

  /// Ensemble sized per the paper for streams up to `max_length`.
  static MorrisCounterEnsemble ForStream(uint64_t max_length, double delta,
                                         uint64_t seed);

  /// Returns true iff any member counter's exponent changed.
  bool Increment() {
    bool changed = false;
    for (auto& c : counters_) changed |= c.Increment(rng_);
    return changed;
  }

  double Estimate() const {
    double sum = 0;
    for (const auto& c : counters_) sum += c.Estimate();
    return counters_.empty() ? 0.0 : sum / static_cast<double>(counters_.size());
  }

  int k() const { return static_cast<int>(counters_.size()); }

  int SpaceBits() const {
    int bits = 0;
    for (const auto& c : counters_) bits += c.SpaceBits();
    return bits;
  }

  void Serialize(BitWriter& out) const {
    out.WriteGamma(counters_.size() + 1);
    for (const auto& c : counters_) c.Serialize(out);
  }
  void Deserialize(BitReader& in) {
    const size_t k = in.CheckedCount(in.ReadGamma() - 1);
    counters_.assign(k, MorrisCounter(2.0));
    for (auto& c : counters_) c.Deserialize(in);
  }

 private:
  Rng rng_;
  std::vector<MorrisCounter> counters_;
};

}  // namespace l1hh

#endif  // L1HH_COUNT_MORRIS_COUNTER_H_
