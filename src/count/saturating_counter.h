// A counter truncated at a fixed cap.
//
// Algorithm 3 (epsilon-Minimum) truncates the counters of its third sample
// S3 at 2 log^7(2 / (eps delta)): values above the cap cannot be the
// minimum, so only O(log log) bits per counter are ever needed.
#ifndef L1HH_COUNT_SATURATING_COUNTER_H_
#define L1HH_COUNT_SATURATING_COUNTER_H_

#include <cstdint>

#include "util/bit_util.h"

namespace l1hh {

class SaturatingCounter {
 public:
  SaturatingCounter() = default;
  explicit SaturatingCounter(uint64_t cap) : cap_(cap) {}

  void Increment() {
    if (value_ < cap_) ++value_;
  }

  uint64_t value() const { return value_; }
  bool saturated() const { return value_ >= cap_; }
  uint64_t cap() const { return cap_; }

  /// Bits to store a value in [0, cap].
  int SpaceBits() const { return BitWidth(cap_); }

 private:
  uint64_t cap_ = UINT64_MAX;
  uint64_t value_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_COUNT_SATURATING_COUNTER_H_
