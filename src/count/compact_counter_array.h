// A variable-length counter array in the spirit of Blandford–Blelloch
// [BB08], which the paper invokes for its RAM model: "We store an integer C
// using a variable length array which allows us to read and update C in O(1)
// time and O(log C) bits of space" (Section 2.3).
//
// Layout: every counter owns a 4-bit nibble in a packed base array; counters
// that outgrow their nibble spill into a small open-addressing overflow map
// holding the high bits.  Reads and increments are O(1); the occupied space
// is Theta(sum_i log c_i) + O(n) bits, matching the accounting the paper
// needs for tables T2/T3 of Algorithm 2.  SpaceBits() reports the
// information-theoretic gamma-code cost, which is what the benches chart;
// HeapBytes() reports what this process actually allocated.
#ifndef L1HH_COUNT_COMPACT_COUNTER_ARRAY_H_
#define L1HH_COUNT_COMPACT_COUNTER_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bit_stream.h"
#include "util/bit_util.h"

namespace l1hh {

class CompactCounterArray {
 public:
  explicit CompactCounterArray(size_t n = 0) { Reset(n); }

  void Reset(size_t n);

  size_t size() const { return size_; }

  uint64_t Get(size_t i) const {
    const uint8_t nib = Nibble(i);
    if (nib < kNibbleMax) return nib;
    const auto it = overflow_.find(i);
    return (it == overflow_.end() ? 0 : it->second) + kNibbleMax;
  }

  /// counter[i] += delta.
  void Add(size_t i, uint64_t delta);

  void Increment(size_t i) { Add(i, 1); }

  /// Cell-wise sum: counter[i] += other[i] for all i.  Returns false (and
  /// changes nothing) when the arrays differ in length.  This is the
  /// combination step of every table merge (e.g. BdwOptimal::MergeFrom).
  bool AddFrom(const CompactCounterArray& other);

  /// Sum of all counters.
  uint64_t Total() const { return total_; }

  /// Information-theoretic space: gamma-code cost of every nonzero counter
  /// plus one bit per (empty) slot; this matches the paper's
  /// "each entry can store an integer in [0, B]" tables when contents are
  /// small and degrades gracefully (O(log C) per counter) when they grow.
  size_t SpaceBits() const;

  /// Actual process memory held by this structure.
  size_t HeapBytes() const;

  /// Dense wire encoding: one gamma code per cell (1 bit per empty cell).
  /// This is what the Section 4 communication games send — the message
  /// size tracks the structure's cell count, the quantity the
  /// message-vs-eps experiments chart.
  void Serialize(BitWriter& out) const;
  void Deserialize(BitReader& in);

  /// Snapshot wire encoding: nonzero cells as gamma-coded (gap, value)
  /// pairs when the grid is sparse — low-occupancy T2/T3 states (window
  /// buckets, shard partials, early checkpoints) cost Theta(nonzero)
  /// instead of Theta(size) bits — with an automatic dense fallback
  /// (1-bit format flag) for saturated grids, where gap codes would only
  /// add overhead.  This is what the snapshot path persists (measured
  /// table: docs/SNAPSHOTS.md).
  void SerializeSparse(BitWriter& out) const;

  /// Restores a SerializeSparse payload.  `expected_size` is the cell
  /// count the caller's configuration implies (e.g. rows * reps for T2);
  /// a payload claiming any other size marks the reader corrupt WITHOUT
  /// allocating.  The wire size can legitimately dwarf the payload bits
  /// (that is the point of the sparse encoding), so — unlike the dense
  /// format — the size field cannot be sanity-bounded by the bits
  /// remaining, only by the caller's expectation.
  void DeserializeSparse(BitReader& in, size_t expected_size);

 private:
  static constexpr uint8_t kNibbleMax = 15;  // nibble value 15 == "spilled"

  uint8_t Nibble(size_t i) const {
    const uint8_t byte = packed_[i >> 1];
    return (i & 1) != 0 ? (byte >> 4) : (byte & 0x0f);
  }
  void SetNibble(size_t i, uint8_t v) {
    uint8_t& byte = packed_[i >> 1];
    if ((i & 1) != 0) {
      byte = static_cast<uint8_t>((byte & 0x0f) | (v << 4));
    } else {
      byte = static_cast<uint8_t>((byte & 0xf0) | v);
    }
  }

  size_t size_ = 0;
  uint64_t total_ = 0;
  std::vector<uint8_t> packed_;                    // 2 counters per byte
  std::unordered_map<size_t, uint64_t> overflow_;  // value - kNibbleMax
};

}  // namespace l1hh

#endif  // L1HH_COUNT_COMPACT_COUNTER_ARRAY_H_
