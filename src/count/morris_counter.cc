#include "count/morris_counter.h"

#include <algorithm>
#include <cmath>

namespace l1hh {

MorrisCounterEnsemble MorrisCounterEnsemble::ForStream(uint64_t max_length,
                                                       double delta,
                                                       uint64_t seed) {
  // k = 2 log2(log2(m) / delta), as in the proof of Theorem 7.
  const double log2m = std::max(1.0, std::log2(static_cast<double>(
                                         std::max<uint64_t>(max_length, 2))));
  const double k = 2.0 * std::log2(std::max(2.0, log2m / delta));
  return MorrisCounterEnsemble(std::max(1, static_cast<int>(std::ceil(k))),
                               2.0, seed);
}

}  // namespace l1hh
