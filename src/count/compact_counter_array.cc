#include "count/compact_counter_array.h"

namespace l1hh {

void CompactCounterArray::Reset(size_t n) {
  size_ = n;
  total_ = 0;
  packed_.assign((n + 1) / 2, 0);
  overflow_.clear();
}

void CompactCounterArray::Add(size_t i, uint64_t delta) {
  if (delta == 0) return;
  total_ += delta;
  const uint8_t nib = Nibble(i);
  if (nib < kNibbleMax) {
    const uint64_t v = nib + delta;
    if (v < kNibbleMax) {
      SetNibble(i, static_cast<uint8_t>(v));
      return;
    }
    SetNibble(i, kNibbleMax);
    overflow_[i] += v - kNibbleMax;
    return;
  }
  overflow_[i] += delta;
}

bool CompactCounterArray::AddFrom(const CompactCounterArray& other) {
  if (other.size_ != size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    const uint64_t v = other.Get(i);
    if (v != 0) Add(i, v);
  }
  return true;
}

size_t CompactCounterArray::SpaceBits() const {
  size_t bits = 0;
  for (size_t i = 0; i < size_; ++i) {
    const uint64_t v = Get(i);
    bits += v == 0 ? 1 : static_cast<size_t>(CounterBits(v));
  }
  return bits;
}

size_t CompactCounterArray::HeapBytes() const {
  // unordered_map node overhead approximated at 48 bytes per entry plus the
  // bucket array.
  return packed_.capacity() +
         overflow_.size() * 48 + overflow_.bucket_count() * sizeof(void*);
}

void CompactCounterArray::Serialize(BitWriter& out) const {
  out.WriteGamma(size_ + 1);
  for (size_t i = 0; i < size_; ++i) {
    out.WriteCounter(Get(i));
  }
}

void CompactCounterArray::Deserialize(BitReader& in) {
  const size_t n = in.CheckedCount(in.ReadGamma() - 1);
  Reset(n);
  for (size_t i = 0; i < n; ++i) {
    Add(i, in.ReadCounter());
  }
}

void CompactCounterArray::SerializeSparse(BitWriter& out) const {
  // Sparse gap-coded cells: only nonzero cells go on the wire — cell
  // count, a format bit, nonzero count, then (gap-from-previous-nonzero,
  // value) pairs in index order, so runs of zero cells collapse into one
  // gamma-coded gap.  That wins big for low-occupancy grids (a sliding
  // window's bucket states, a shard's partial stream, an early
  // checkpoint) but LOSES on a saturated grid, where the gap codes are
  // pure overhead over the dense one-gamma-per-cell form; the encoder
  // prices both and writes whichever is smaller, flagged by the format
  // bit, so the payload is never worse than min(dense, sparse) + 1.
  out.WriteGamma(size_ + 1);
  size_t dense_bits = 0;
  size_t sparse_bits = 0;
  size_t nonzero = 0;
  {
    size_t previous_end = 0;
    for (size_t i = 0; i < size_; ++i) {
      const uint64_t v = Get(i);
      dense_bits += static_cast<size_t>(CounterBits(v));
      if (v == 0) continue;
      sparse_bits += static_cast<size_t>(CounterBits(i - previous_end)) +
                     static_cast<size_t>(EliasGammaBits(v));
      previous_end = i + 1;
      ++nonzero;
    }
    sparse_bits += static_cast<size_t>(CounterBits(nonzero));
  }
  const bool sparse = sparse_bits < dense_bits;
  out.WriteBool(sparse);
  if (!sparse) {
    for (size_t i = 0; i < size_; ++i) out.WriteCounter(Get(i));
    return;
  }
  out.WriteCounter(nonzero);
  size_t previous_end = 0;  // one past the last written cell
  for (size_t i = 0; i < size_; ++i) {
    const uint64_t v = Get(i);
    if (v == 0) continue;
    out.WriteCounter(i - previous_end);  // zero cells skipped
    out.WriteGamma(v);
    previous_end = i + 1;
  }
}

void CompactCounterArray::DeserializeSparse(BitReader& in,
                                            size_t expected_size) {
  const uint64_t claimed = in.ReadGamma() - 1;
  if (claimed != expected_size) {
    // Shape mismatch with the caller's configuration: refuse before any
    // allocation (a hostile size field must not drive Reset).
    (void)in.CheckedCount(~uint64_t{0});  // force overflow status
    Reset(0);
    return;
  }
  const size_t n = static_cast<size_t>(claimed);
  Reset(n);
  if (!in.ReadBool()) {  // dense fallback (saturated grid)
    for (size_t i = 0; i < n; ++i) Add(i, in.ReadCounter());
    return;
  }
  uint64_t nonzero = in.CheckedCount(in.ReadCounter());
  if (nonzero > n) {
    // More nonzero cells than cells: hostile input, not a truncation.
    nonzero = in.CheckedCount(~uint64_t{0});  // force overflow status
  }
  size_t next = 0;
  for (uint64_t k = 0; k < nonzero && !in.overflow(); ++k) {
    const uint64_t gap = in.ReadCounter();
    if (gap >= n - next) {  // would land past the end of the array
      (void)in.CheckedCount(~uint64_t{0});
      break;
    }
    next += gap;
    Add(next, in.ReadGamma());
    ++next;
  }
}

}  // namespace l1hh
