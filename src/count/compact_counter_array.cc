#include "count/compact_counter_array.h"

namespace l1hh {

void CompactCounterArray::Reset(size_t n) {
  size_ = n;
  total_ = 0;
  packed_.assign((n + 1) / 2, 0);
  overflow_.clear();
}

void CompactCounterArray::Add(size_t i, uint64_t delta) {
  if (delta == 0) return;
  total_ += delta;
  const uint8_t nib = Nibble(i);
  if (nib < kNibbleMax) {
    const uint64_t v = nib + delta;
    if (v < kNibbleMax) {
      SetNibble(i, static_cast<uint8_t>(v));
      return;
    }
    SetNibble(i, kNibbleMax);
    overflow_[i] += v - kNibbleMax;
    return;
  }
  overflow_[i] += delta;
}

bool CompactCounterArray::AddFrom(const CompactCounterArray& other) {
  if (other.size_ != size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    const uint64_t v = other.Get(i);
    if (v != 0) Add(i, v);
  }
  return true;
}

size_t CompactCounterArray::SpaceBits() const {
  size_t bits = 0;
  for (size_t i = 0; i < size_; ++i) {
    const uint64_t v = Get(i);
    bits += v == 0 ? 1 : static_cast<size_t>(CounterBits(v));
  }
  return bits;
}

size_t CompactCounterArray::HeapBytes() const {
  // unordered_map node overhead approximated at 48 bytes per entry plus the
  // bucket array.
  return packed_.capacity() +
         overflow_.size() * 48 + overflow_.bucket_count() * sizeof(void*);
}

void CompactCounterArray::Serialize(BitWriter& out) const {
  out.WriteGamma(size_ + 1);
  for (size_t i = 0; i < size_; ++i) {
    out.WriteCounter(Get(i));
  }
}

void CompactCounterArray::Deserialize(BitReader& in) {
  const size_t n = in.CheckedCount(in.ReadGamma() - 1);
  Reset(n);
  for (size_t i = 0; i < n; ++i) {
    Add(i, in.ReadCounter());
  }
}

}  // namespace l1hh
