// Lock-free single-producer/single-consumer ring buffer — the per-shard
// ingestion queue of the sharded engine (engine/sharded_engine.h).
//
// The classic bounded SPSC design: a power-of-two slot array indexed by
// two monotonically increasing positions.  The producer owns `tail_`, the
// consumer owns `head_`; each side re-reads the other's position (with
// acquire ordering) only when its cached copy says the ring looks full or
// empty, so the steady-state push/pop touches a single shared cache line
// per batch instead of per item.  All slot writes are published by the
// release store of `tail_` and observed via the acquire load in the
// consumer (and symmetrically for frees via `head_`), so the structure is
// data-race-free without any locks.
//
// ---- Thread-safety contract -------------------------------------------
// Exactly one thread may call the producer methods (TryPush/PushSome) and
// exactly one thread the consumer methods (PopBatch); ApproxSize is safe
// on either side.  Two producers (or two consumers) race on the cached
// positions and the slot array — use one ring per producer/consumer pair
// instead.  The engine enforces this: the controller thread produces, the
// shard's one drain worker consumes (docs/ENGINE.md).
//
// Implementation gotcha (regression-pinned by sharded_engine_test): a
// consumer must refresh its cached tail whenever the cache cannot satisfy
// the *requested* batch, not only when the ring looks empty — otherwise
// PopBatch keeps serving short batches from a stale snapshot while the
// producer has long since published more.
#ifndef L1HH_ENGINE_SPSC_RING_H_
#define L1HH_ENGINE_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bit_util.h"

namespace l1hh {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so index
  /// wrapping is a mask, not a modulo.
  explicit SpscRing(size_t capacity)
      : capacity_(RoundUpPowerOfTwo(std::max<size_t>(capacity, 2))),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer: enqueue one value.  Returns false when the ring is full.
  bool TryPush(const T& value) { return PushSome(&value, 1) == 1; }

  /// Producer: enqueue up to `n` values from `data`; returns how many were
  /// enqueued (0 when full).  Partial pushes keep stream order.
  size_t PushSome(const T* data, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = capacity_ - static_cast<size_t>(tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - static_cast<size_t>(tail - cached_head_);
      if (free == 0) return 0;
    }
    const size_t count = n < free ? n : free;
    for (size_t i = 0; i < count; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = data[i];
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer: dequeue up to `max` values into `out`; returns how many
  /// were dequeued (0 when empty).
  size_t PopBatch(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t available = static_cast<size_t>(cached_tail_ - head);
    if (available < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      available = static_cast<size_t>(cached_tail_ - head);
      if (available == 0) return 0;
    }
    const size_t count = max < available ? max : available;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[static_cast<size_t>(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Either side: a point-in-time occupancy estimate (exact when the other
  /// side is quiescent, which is how the engine's Flush uses it).
  size_t ApproxSize() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: its position plus a cached view of the consumer.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer-owned line, symmetrically.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_ENGINE_SPSC_RING_H_
