#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/random.h"

namespace l1hh {
namespace {

// Worker idle policy: spin a little (items usually arrive back-to-back),
// then yield, then sleep — so an idle engine does not burn a core, which
// matters on machines where workers share cores with the producer.
class IdleBackoff {
 public:
  void Idle() {
    ++idle_rounds_;
    if (idle_rounds_ < 64) return;
    if (idle_rounds_ < 256) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void Reset() { idle_rounds_ = 0; }

 private:
  unsigned idle_rounds_ = 0;
};

}  // namespace

std::unique_ptr<ShardedEngine> ShardedEngine::Create(
    const ShardedEngineOptions& options, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  if (options.num_shards == 0) {
    return fail(Status::InvalidArgument("num_shards must be >= 1"));
  }
  auto probe = MakeSummary(options.algorithm, options.summary);
  if (probe == nullptr) {
    return fail(Status::InvalidArgument("unknown summary algorithm '" +
                                        options.algorithm + "'"));
  }
  // The refusal rule is keyed off the adapter's own SupportsMerge, so a
  // structure becomes shardable the moment its Merge lands (bdw_optimal
  // did via the shared epoch schedule; lossy_counting and sticky_sampling
  // remain position-dependent and refused at K > 1).
  if (options.num_shards > 1 && !probe->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + options.algorithm +
        "' does not support Merge; the engine refuses to shard it "
        "(num_shards must be 1)"));
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));
  engine->shards_[0]->summary = std::move(probe);
  for (size_t s = 1; s < engine->shards_.size(); ++s) {
    engine->shards_[s]->summary =
        MakeSummary(options.algorithm, options.summary);
  }
  engine->StartWorkers();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options)
    : options_(options) {
  // drain_batch == 0 would make every worker pop nothing forever and
  // Flush spin-wait indefinitely; clamp rather than hang.
  options_.drain_batch = std::max<size_t>(options_.drain_batch, 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity));
  }
  staging_.resize(options_.num_shards);
  const size_t stage = std::max<size_t>(64, options_.drain_batch);
  for (auto& buffer : staging_) buffer.reserve(stage);
}

ShardedEngine::~ShardedEngine() {
  Flush();
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) worker.join();
}

void ShardedEngine::StartWorkers() {
  const size_t shard_count = shards_.size();
  size_t thread_count = options_.num_threads == 0 ? shard_count
                                                  : options_.num_threads;
  thread_count = std::min(std::max<size_t>(thread_count, 1), shard_count);
  workers_.reserve(thread_count);
  // Contiguous shard ranges, remainder spread over the first threads, so
  // every shard has exactly one consumer.
  const size_t base = shard_count / thread_count;
  const size_t extra = shard_count % thread_count;
  size_t first = 0;
  for (size_t t = 0; t < thread_count; ++t) {
    const size_t count = base + (t < extra ? 1 : 0);
    const size_t last = first + count;
    workers_.emplace_back(
        [this, first, last] { WorkerLoop(first, last); });
    first = last;
  }
}

void ShardedEngine::WorkerLoop(size_t first_shard, size_t last_shard) {
  std::vector<uint64_t> batch(options_.drain_batch);
  IdleBackoff backoff;
  while (true) {
    size_t drained = 0;
    for (size_t s = first_shard; s < last_shard; ++s) {
      Shard& shard = *shards_[s];
      const size_t n = shard.ring.PopBatch(batch.data(), batch.size());
      if (n == 0) continue;
      drained += n;
      shard.summary->UpdateBatch({batch.data(), n});
      // Release-publish the summary mutations; Flush acquires.
      shard.applied.fetch_add(n, std::memory_order_release);
    }
    if (drained != 0) {
      backoff.Reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // One more pass raced nothing in: all owned rings were empty and no
      // producer can enqueue after stop (the destructor flushed first).
      return;
    }
    backoff.Idle();
  }
}

size_t ShardedEngine::ShardOf(uint64_t item) const {
  // Mix before reducing: raw ids are often sequential, and a plain modulo
  // would stripe them instead of hashing them.
  return shards_.size() == 1
             ? 0
             : static_cast<size_t>(Mix64(item) % shards_.size());
}

void ShardedEngine::PushBlocking(Shard& shard, const uint64_t* data,
                                 size_t n) {
  IdleBackoff backoff;
  size_t done = 0;
  while (done < n) {
    const size_t pushed = shard.ring.PushSome(data + done, n - done);
    if (pushed == 0) {
      backoff.Idle();  // backpressure: ring full, wait for the drain
      continue;
    }
    backoff.Reset();
    done += pushed;
  }
  shard.enqueued.fetch_add(n, std::memory_order_relaxed);
}

void ShardedEngine::Update(uint64_t item, uint64_t weight) {
  Shard& shard = *shards_[ShardOf(item)];
  for (uint64_t i = 0; i < weight; ++i) PushBlocking(shard, &item, 1);
}

void ShardedEngine::UpdateBatch(std::span<const uint64_t> items) {
  if (shards_.size() == 1) {
    // No partitioning needed; feed the ring directly.
    PushBlocking(*shards_[0], items.data(), items.size());
    return;
  }
  const size_t stage_cap = std::max<size_t>(64, options_.drain_batch);
  for (const uint64_t item : items) {
    std::vector<uint64_t>& stage = staging_[ShardOf(item)];
    stage.push_back(item);
    if (stage.size() >= stage_cap) {
      PushBlocking(*shards_[ShardOf(item)], stage.data(), stage.size());
      stage.clear();
    }
  }
  FlushStaging();
}

void ShardedEngine::FlushStaging() {
  for (size_t s = 0; s < staging_.size(); ++s) {
    if (staging_[s].empty()) continue;
    PushBlocking(*shards_[s], staging_[s].data(), staging_[s].size());
    staging_[s].clear();
  }
}

void ShardedEngine::Flush() {
  FlushStaging();
  IdleBackoff backoff;
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_relaxed);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      backoff.Idle();
    }
  }
}

uint64_t ShardedEngine::ItemsProcessed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<uint64_t> ShardedEngine::ShardItemCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->applied.load(std::memory_order_acquire));
  }
  return counts;
}

const Summary& ShardedEngine::MergedView() {
  Flush();
  if (shards_.size() == 1) return *shards_[0]->summary;
  const uint64_t epoch = ItemsProcessed();
  if (merged_valid_ && epoch == merged_epoch_) return *merged_;
  // Rebuild: a fresh empty instance absorbs every shard.  All shards were
  // constructed from the same options/seed, so the merges cannot fail on
  // compatibility; if one does, surface it loudly (a silent partial merge
  // would corrupt the global report).
  merged_ = MakeSummary(options_.algorithm, options_.summary);
  for (const auto& shard : shards_) {
    const Status s = merged_->Merge(*shard->summary);
    if (!s.ok()) {
      std::fprintf(stderr, "ShardedEngine: shard merge failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  }
  merged_epoch_ = epoch;
  merged_valid_ = true;
  return *merged_;
}

double ShardedEngine::Estimate(uint64_t item) {
  return MergedView().Estimate(item);
}

std::vector<ItemEstimate> ShardedEngine::HeavyHitters(double phi) {
  return MergedView().HeavyHitters(phi);
}

size_t ShardedEngine::MemoryUsageBytes() {
  Flush();
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->summary->MemoryUsageBytes() +
             shard->ring.capacity() * sizeof(uint64_t);
  }
  if (merged_valid_) total += merged_->MemoryUsageBytes();
  return total;
}

}  // namespace l1hh
