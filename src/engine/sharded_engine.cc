#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "io/snapshot.h"
#include "util/random.h"
#include "window/sliding_window_summary.h"

namespace l1hh {
namespace {

// Worker idle policy: spin a little (items usually arrive back-to-back),
// then yield, then sleep — so an idle engine does not burn a core, which
// matters on machines where workers share cores with the producer.
class IdleBackoff {
 public:
  void Idle() {
    ++idle_rounds_;
    if (idle_rounds_ < 64) return;
    if (idle_rounds_ < 256) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void Reset() { idle_rounds_ = 0; }

 private:
  unsigned idle_rounds_ = 0;
};

// One snapshot file per shard, named by shard index so the manifest and
// the directory listing agree without a lookup table.
std::string ShardFileName(size_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.l1hh", shard);
  return name;
}

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "l1hh-checkpoint v1";

}  // namespace

std::unique_ptr<ShardedEngine> ShardedEngine::Create(
    const ShardedEngineOptions& options, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  if (options.num_shards == 0) {
    return fail(Status::InvalidArgument("num_shards must be >= 1"));
  }
  Status make_status;
  auto probe = MakeSummary(options.algorithm, options.summary, &make_status);
  if (probe == nullptr) {
    // The factory's own reason: "unknown summary algorithm" for a bad
    // name, the specific windowed refusal (non-mergeable inner, hostile
    // geometry) for a windowed: spelling.
    return fail(std::move(make_status));
  }
  // The refusal rule is keyed off the adapter's own SupportsMerge, so a
  // structure becomes shardable the moment its Merge lands (bdw_optimal
  // did via the shared epoch schedule; lossy_counting and sticky_sampling
  // remain position-dependent and refused at K > 1).
  if (options.num_shards > 1 && !probe->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + options.algorithm +
        "' does not support Merge; the engine refuses to shard it "
        "(num_shards must be 1)"));
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));
  engine->shards_[0]->summary = std::move(probe);
  for (size_t s = 1; s < engine->shards_.size(); ++s) {
    engine->shards_[s]->summary =
        MakeSummary(options.algorithm, options.summary);
  }
  engine->BindWindows(/*restored_rotations=*/0);
  engine->StartWorkers();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

void ShardedEngine::BindWindows(uint64_t restored_rotations) {
  windows_.clear();
  if (dynamic_cast<SlidingWindowSummary*>(shards_[0]->summary.get()) ==
      nullptr) {
    return;
  }
  windows_.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto* window =
        static_cast<SlidingWindowSummary*>(shard->summary.get());
    // Shard-local update counts must never rotate a ring: all K rings
    // rotate together at global bucket boundaries, driven from here.
    window->set_external_rotation(true);
    windows_.push_back(window);
  }
  rotation_stride_ = windows_[0]->bucket_width();
  global_enqueued_ = 0;
  for (const auto& shard : shards_) {
    global_enqueued_ += shard->enqueued.load(std::memory_order_relaxed);
  }
  next_rotation_at_ = (restored_rotations + 1) * rotation_stride_;
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options)
    : options_(options) {
  // drain_batch == 0 would make every worker pop nothing forever and
  // Flush spin-wait indefinitely; clamp rather than hang.
  options_.drain_batch = std::max<size_t>(options_.drain_batch, 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity));
  }
  staging_.resize(options_.num_shards);
  const size_t stage = std::max<size_t>(64, options_.drain_batch);
  for (auto& buffer : staging_) buffer.reserve(stage);
}

ShardedEngine::~ShardedEngine() {
  Flush();
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) worker.join();
}

void ShardedEngine::StartWorkers() {
  const size_t shard_count = shards_.size();
  size_t thread_count = options_.num_threads == 0 ? shard_count
                                                  : options_.num_threads;
  thread_count = std::min(std::max<size_t>(thread_count, 1), shard_count);
  workers_.reserve(thread_count);
  // Contiguous shard ranges, remainder spread over the first threads, so
  // every shard has exactly one consumer.
  const size_t base = shard_count / thread_count;
  const size_t extra = shard_count % thread_count;
  size_t first = 0;
  for (size_t t = 0; t < thread_count; ++t) {
    const size_t count = base + (t < extra ? 1 : 0);
    const size_t last = first + count;
    workers_.emplace_back(
        [this, first, last] { WorkerLoop(first, last); });
    first = last;
  }
}

void ShardedEngine::WorkerLoop(size_t first_shard, size_t last_shard) {
  std::vector<uint64_t> batch(options_.drain_batch);
  IdleBackoff backoff;
  while (true) {
    size_t drained = 0;
    for (size_t s = first_shard; s < last_shard; ++s) {
      Shard& shard = *shards_[s];
      const size_t n = shard.ring.PopBatch(batch.data(), batch.size());
      if (n == 0) continue;
      drained += n;
      shard.summary->UpdateBatch({batch.data(), n});
      // Release-publish the summary mutations; Flush acquires.
      shard.applied.fetch_add(n, std::memory_order_release);
    }
    if (drained != 0) {
      backoff.Reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // One more pass raced nothing in: all owned rings were empty and no
      // producer can enqueue after stop (the destructor flushed first).
      return;
    }
    backoff.Idle();
  }
}

size_t ShardedEngine::ShardOf(uint64_t item) const {
  // Mix before reducing: raw ids are often sequential, and a plain modulo
  // would stripe them instead of hashing them.
  return shards_.size() == 1
             ? 0
             : static_cast<size_t>(Mix64(item) % shards_.size());
}

void ShardedEngine::PushBlocking(Shard& shard, const uint64_t* data,
                                 size_t n) {
  IdleBackoff backoff;
  size_t done = 0;
  while (done < n) {
    const size_t pushed = shard.ring.PushSome(data + done, n - done);
    if (pushed == 0) {
      backoff.Idle();  // backpressure: ring full, wait for the drain
      continue;
    }
    backoff.Reset();
    done += pushed;
  }
  shard.enqueued.fetch_add(n, std::memory_order_relaxed);
}

void ShardedEngine::RotateAllShards() {
  // Rotation mutates shard summaries, which is only safe while the drain
  // workers are quiescent — the same protocol every query uses (Flush
  // drains the staging buffers first, then waits for applied == enqueued).
  Flush();
  for (auto* window : windows_) window->Rotate();
  // Rotation changes state without moving the applied count; a cached
  // merge would silently keep serving the evicted bucket.
  merged_valid_ = false;
}

template <typename PushFn>
void ShardedEngine::IngestWindowed(uint64_t total, PushFn&& push) {
  uint64_t offset = 0;
  while (offset < total) {
    // Lazy rotation, matching the standalone ring: the boundary bucket
    // stays live until the first item PAST the boundary arrives, so a
    // stream ending exactly on a boundary covers a full window.
    if (global_enqueued_ == next_rotation_at_) {
      RotateAllShards();
      next_rotation_at_ += rotation_stride_;
    }
    const uint64_t take =
        std::min(total - offset, next_rotation_at_ - global_enqueued_);
    push(offset, take);
    global_enqueued_ += take;
    offset += take;
  }
}

void ShardedEngine::Update(uint64_t item, uint64_t weight) {
  Shard& shard = *shards_[ShardOf(item)];
  if (windows_.empty()) {
    for (uint64_t i = 0; i < weight; ++i) PushBlocking(shard, &item, 1);
    return;
  }
  IngestWindowed(weight, [this, &shard, item](uint64_t, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) PushBlocking(shard, &item, 1);
  });
}

void ShardedEngine::ScatterPush(std::span<const uint64_t> items) {
  if (shards_.size() == 1) {
    // No partitioning needed; feed the ring directly.
    PushBlocking(*shards_[0], items.data(), items.size());
    return;
  }
  const size_t stage_cap = std::max<size_t>(64, options_.drain_batch);
  for (const uint64_t item : items) {
    std::vector<uint64_t>& stage = staging_[ShardOf(item)];
    stage.push_back(item);
    if (stage.size() >= stage_cap) {
      PushBlocking(*shards_[ShardOf(item)], stage.data(), stage.size());
      stage.clear();
    }
  }
  FlushStaging();
}

void ShardedEngine::UpdateBatch(std::span<const uint64_t> items) {
  if (windows_.empty()) {
    ScatterPush(items);
    return;
  }
  // Split the batch at global bucket boundaries: everything before a
  // boundary is scattered and fully applied, then all K rings rotate
  // together, so shard buckets always partition the same global range.
  IngestWindowed(items.size(),
                 [this, items](uint64_t offset, uint64_t count) {
                   ScatterPush(items.subspan(
                       static_cast<size_t>(offset),
                       static_cast<size_t>(count)));
                 });
}

void ShardedEngine::FlushStaging() {
  for (size_t s = 0; s < staging_.size(); ++s) {
    if (staging_[s].empty()) continue;
    PushBlocking(*shards_[s], staging_[s].data(), staging_[s].size());
    staging_[s].clear();
  }
}

void ShardedEngine::Flush() {
  FlushStaging();
  IdleBackoff backoff;
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_relaxed);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      backoff.Idle();
    }
  }
}

uint64_t ShardedEngine::ItemsProcessed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<uint64_t> ShardedEngine::ShardItemCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->applied.load(std::memory_order_acquire));
  }
  return counts;
}

const Summary& ShardedEngine::MergedView() {
  Flush();
  if (shards_.size() == 1) return *shards_[0]->summary;
  const uint64_t epoch = ItemsProcessed();
  if (merged_valid_ && epoch == merged_epoch_) return *merged_;
  // Rebuild: a fresh empty instance absorbs every shard.  All shards were
  // constructed from the same options/seed, so the merges cannot fail on
  // compatibility; if one does, surface it loudly (a silent partial merge
  // would corrupt the global report).
  merged_ = MakeSummary(options_.algorithm, options_.summary);
  for (const auto& shard : shards_) {
    const Status s = merged_->Merge(*shard->summary);
    if (!s.ok()) {
      std::fprintf(stderr, "ShardedEngine: shard merge failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  }
  merged_epoch_ = epoch;
  merged_valid_ = true;
  return *merged_;
}

double ShardedEngine::Estimate(uint64_t item) {
  return MergedView().Estimate(item);
}

std::vector<ItemEstimate> ShardedEngine::HeavyHitters(double phi) {
  return MergedView().HeavyHitters(phi);
}

Status ShardedEngine::Checkpoint(const std::string& dir) {
  Flush();  // quiesce: workers idle, shard summaries safe to read
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create checkpoint directory '" +
                                   dir + "': " + ec.message());
  }
  // Invalidate any previous checkpoint BEFORE touching its shard files: a
  // crash while rewriting must leave a manifest-less directory Restore
  // refuses, never a stale manifest over mixed-epoch shards.
  const std::string manifest_path =
      (std::filesystem::path(dir) / kManifestName).string();
  std::filesystem::remove(manifest_path, ec);
  if (ec) {
    return Status::InvalidArgument("cannot clear previous manifest '" +
                                   manifest_path + "': " + ec.message());
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Status saved = SaveSummaryToFile(
        *shards_[s]->summary,
        (std::filesystem::path(dir) / ShardFileName(s)).string());
    if (!saved.ok()) return saved;
  }
  // The manifest goes last: its presence marks the checkpoint complete, so
  // a crash mid-checkpoint leaves a directory Restore refuses cleanly.
  std::ofstream manifest(manifest_path, std::ios::trunc);
  if (!manifest) {
    return Status::InvalidArgument("cannot write '" + manifest_path + "'");
  }
  manifest << kManifestHeader << "\n"
           << "algorithm=" << options_.algorithm << "\n"
           << "num_shards=" << shards_.size() << "\n"
           << "items_processed=" << ItemsProcessed() << "\n";
  for (size_t s = 0; s < shards_.size(); ++s) {
    manifest << "shard=" << ShardFileName(s) << "\n";
  }
  manifest.flush();
  if (!manifest) {
    return Status::InvalidArgument("short write to '" + manifest_path + "'");
  }
  return Status::Ok();
}

std::unique_ptr<ShardedEngine> ShardedEngine::Restore(
    const std::string& dir, const ShardedEngineOptions& exec,
    Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  const std::string manifest_path =
      (std::filesystem::path(dir) / kManifestName).string();
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    return fail(Status::InvalidArgument(
        "'" + dir + "' is not a checkpoint directory (no " + kManifestName +
        ")"));
  }
  std::string line;
  if (!std::getline(manifest, line) || line != kManifestHeader) {
    return fail(Status::Corruption("unrecognized manifest header in '" +
                                   manifest_path + "'"));
  }
  std::string algorithm;
  uint64_t num_shards = 0;
  std::vector<std::string> shard_files;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(Status::Corruption("malformed manifest line '" + line +
                                     "' in '" + manifest_path + "'"));
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "algorithm") {
      algorithm = value;
    } else if (key == "num_shards") {
      num_shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "shard") {
      // Checkpoint writes shard files as shard-NNNN.l1hh in index order;
      // anything else (path separators, duplicates, reordering) is a
      // tampered manifest, not a checkpoint we wrote.
      if (value != ShardFileName(shard_files.size())) {
        return fail(Status::Corruption("unexpected shard file name '" +
                                       value + "' in '" + manifest_path +
                                       "' (expected '" +
                                       ShardFileName(shard_files.size()) +
                                       "')"));
      }
      shard_files.push_back(value);
    } else if (key != "items_processed") {
      // Unknown keys are rejected, not skipped: a v1 reader must not
      // half-understand a future manifest.
      return fail(Status::InvalidArgument("unknown manifest key '" + key +
                                          "' in '" + manifest_path + "'"));
    }
  }
  if (algorithm.empty() || num_shards == 0 ||
      shard_files.size() != num_shards) {
    return fail(Status::Corruption(
        "manifest '" + manifest_path + "' is incomplete (algorithm='" +
        algorithm + "', num_shards=" + std::to_string(num_shards) + ", " +
        std::to_string(shard_files.size()) + " shard files)"));
  }

  std::vector<std::unique_ptr<Summary>> loaded;
  loaded.reserve(shard_files.size());
  for (const std::string& file : shard_files) {
    Status load_status;
    auto summary = LoadSummaryFromFile(
        (std::filesystem::path(dir) / file).string(), &load_status);
    if (summary == nullptr) return fail(std::move(load_status));
    if (summary->Name() != algorithm) {
      return fail(Status::Corruption(
          "shard file '" + file + "' holds '" +
          std::string(summary->Name()) + "', manifest says '" + algorithm +
          "'"));
    }
    loaded.push_back(std::move(summary));
  }
  if (num_shards > 1 && !loaded[0]->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + algorithm + "' does not support Merge; a multi-shard "
        "checkpoint of it cannot be valid"));
  }
  // All shards must come from ONE checkpoint: same options and seed, or
  // the first MergedView() query would fail on Merge compatibility (and
  // abort).  Catch a spliced-in foreign shard file here, as a Status.
  const SummaryOptions base = loaded[0]->Options();
  for (size_t s = 1; s < loaded.size(); ++s) {
    if (!(loaded[s]->Options() == base)) {
      return fail(Status::Corruption(
          "shard file '" + shard_files[s] + "' was built with different "
          "options or seed than '" + shard_files[0] +
          "'; not shards of one checkpoint"));
    }
  }

  // Windowed checkpoints additionally require rotation-aligned rings:
  // every shard window must have crossed the same number of global bucket
  // boundaries, or the restored rings would not be bucket-wise mergeable.
  uint64_t restored_rotations = 0;
  if (const auto* window0 =
          dynamic_cast<const SlidingWindowSummary*>(loaded[0].get())) {
    restored_rotations = window0->rotations();
    for (size_t s = 1; s < loaded.size(); ++s) {
      const auto* window =
          static_cast<const SlidingWindowSummary*>(loaded[s].get());
      if (window->rotations() != restored_rotations) {
        return fail(Status::Corruption(
            "shard file '" + shard_files[s] + "' rotated " +
            std::to_string(window->rotations()) + " times, '" +
            shard_files[0] + "' " + std::to_string(restored_rotations) +
            "; not windows of one lockstep checkpoint"));
      }
    }
    uint64_t total = 0;
    for (const auto& summary : loaded) total += summary->ItemsProcessed();
    const uint64_t stride = window0->bucket_width();
    // Between Update calls the lazy-rotation protocol admits exactly one
    // rotation count per item total: floor((total-1)/stride) — at a
    // boundary the full bucket's rotation is still pending the next
    // item.  Derive it by DIVISION: `restored_rotations` comes off the
    // wire, and multiplying by it could wrap u64 past this check (the
    // same hardening the snapshot width*depth checks got in PR 4).
    const uint64_t expected_rotations =
        total == 0 ? 0 : (total - 1) / stride;
    // Also bound it so BindWindows' (rotations + 1) * stride cannot wrap
    // u64 (which would park next_rotation_at_ behind the global clock
    // and silently stop rotation forever).
    if (expected_rotations >= ~uint64_t{0} / stride - 1) {
      return fail(Status::Corruption(
          "checkpoint claims an implausible combined item count " +
          std::to_string(total)));
    }
    if (restored_rotations != expected_rotations) {
      return fail(Status::Corruption(
          "checkpoint window rotation count " +
          std::to_string(restored_rotations) +
          " disagrees with the combined item count " +
          std::to_string(total) + " (bucket width " +
          std::to_string(stride) + " implies " +
          std::to_string(expected_rotations) + ")"));
    }
  }

  ShardedEngineOptions options = exec;
  options.algorithm = algorithm;
  options.summary = loaded[0]->Options();
  options.num_shards = static_cast<size_t>(num_shards);
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));
  for (size_t s = 0; s < engine->shards_.size(); ++s) {
    const uint64_t processed = loaded[s]->ItemsProcessed();
    engine->shards_[s]->summary = std::move(loaded[s]);
    // Pre-thread-start stores: the worker pool has not launched yet.
    engine->shards_[s]->enqueued.store(processed, std::memory_order_relaxed);
    engine->shards_[s]->applied.store(processed, std::memory_order_relaxed);
  }
  engine->BindWindows(restored_rotations);
  engine->StartWorkers();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

std::unique_ptr<ShardedEngine> ShardedEngine::Restore(const std::string& dir,
                                                      Status* status) {
  return Restore(dir, ShardedEngineOptions{}, status);
}

size_t ShardedEngine::MemoryUsageBytes() {
  Flush();
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->summary->MemoryUsageBytes() +
             shard->ring.capacity() * sizeof(uint64_t);
  }
  if (merged_valid_) total += merged_->MemoryUsageBytes();
  return total;
}

}  // namespace l1hh
