#include "engine/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "io/durable_file.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/random.h"
#include "window/sliding_window_summary.h"

namespace l1hh {
namespace {

// Worker idle policy: spin a little (items usually arrive back-to-back),
// then yield, then sleep — so an idle engine does not burn a core, which
// matters on machines where workers share cores with the producers.
class IdleBackoff {
 public:
  void Idle() {
    ++idle_rounds_;
    if (idle_rounds_ < 64) return;
    if (idle_rounds_ < 256) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  void Reset() { idle_rounds_ = 0; }

 private:
  unsigned idle_rounds_ = 0;
};

// Checkpoint files carry both the shard index and the generation that
// wrote them, so a delta chain spanning generations never collides with
// its own base and retention can prune by name.  docs/SNAPSHOTS.md has
// the full directory layout.
std::string ShardFullFileName(size_t shard, uint64_t gen) {
  char name[48];
  std::snprintf(name, sizeof(name), "shard-%04zu.g%06llu.l1hh", shard,
                static_cast<unsigned long long>(gen));
  return name;
}

std::string ShardDeltaFileName(size_t shard, uint64_t gen) {
  char name[48];
  std::snprintf(name, sizeof(name), "shard-%04zu.g%06llu.delta", shard,
                static_cast<unsigned long long>(gen));
  return name;
}

constexpr const char* kManifestPrefix = "MANIFEST.";
constexpr const char* kManifestHeader = "l1hh-checkpoint v2";

std::string ManifestFileName(uint64_t gen) {
  char name[32];
  std::snprintf(name, sizeof(name), "MANIFEST.%06llu",
                static_cast<unsigned long long>(gen));
  return name;
}

// Extracts <gen> from a MANIFEST.<gen> file name; false for anything else
// (including a bare pre-v2 "MANIFEST", which this build no longer reads).
bool ParseManifestGeneration(const std::string& name, uint64_t* gen) {
  const std::string prefix(kManifestPrefix);
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  uint64_t g = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    g = g * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = g;
  return true;
}

/// Manifest generations present in `dir`, newest first.
std::vector<uint64_t> ListManifestGenerations(const std::string& dir) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t gen = 0;
    if (ParseManifestGeneration(entry.path().filename().string(), &gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end(), std::greater<uint64_t>());
  return gens;
}

// One shard's record in a parsed manifest: the clocks its chain replays
// to and the chain itself — full base snapshot first, deltas in apply
// order.  Every manifest is self-contained (it lists complete chains),
// so restoring a generation never consults an older manifest.
struct ManifestShard {
  uint64_t applied = 0;
  uint64_t rotations = 0;
  std::vector<std::string> files;
};

struct Manifest {
  std::string algorithm;
  uint64_t num_shards = 0;
  uint64_t generation = 0;
  uint64_t items_processed = 0;
  std::vector<ManifestShard> shards;
};

/// Checkpoint writes chain files with fixed name shapes; anything else in
/// a manifest (path separators, a delta in base position, a foreign
/// name) is tampering, not a checkpoint we wrote.
bool PlausibleChainFileName(const std::string& file, uint64_t shard,
                            bool is_full) {
  char prefix[24];
  std::snprintf(prefix, sizeof(prefix), "shard-%04llu.g",
                static_cast<unsigned long long>(shard));
  const std::string suffix = is_full ? ".l1hh" : ".delta";
  return file.size() > std::strlen(prefix) + suffix.size() &&
         file.compare(0, std::strlen(prefix), prefix) == 0 &&
         file.compare(file.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         file.find('/') == std::string::npos;
}

Status ParseManifestFile(const std::string& path, Manifest* manifest) {
  std::vector<uint8_t> raw;
  const Status read = ReadFileBytes(path, &raw);
  if (!read.ok()) return read;
  std::istringstream in(std::string(raw.begin(), raw.end()));
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::Corruption("unrecognized manifest header in '" + path +
                              "'");
  }
  *manifest = Manifest{};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("malformed manifest line '" + line +
                                "' in '" + path + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "algorithm") {
      manifest->algorithm = value;
    } else if (key == "num_shards") {
      manifest->num_shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "generation") {
      manifest->generation = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "items_processed") {
      manifest->items_processed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "shard") {
      // "shard=IDX APPLIED ROTATIONS FILE[+FILE...]", in index order.
      std::istringstream fields(value);
      uint64_t index = 0;
      ManifestShard shard;
      std::string chain;
      if (!(fields >> index >> shard.applied >> shard.rotations >> chain) ||
          index != manifest->shards.size()) {
        return Status::Corruption("malformed shard record '" + value +
                                  "' in '" + path + "'");
      }
      for (size_t start = 0; start <= chain.size();) {
        const size_t plus = chain.find('+', start);
        const size_t end = plus == std::string::npos ? chain.size() : plus;
        shard.files.push_back(chain.substr(start, end - start));
        if (!PlausibleChainFileName(shard.files.back(), index,
                                    shard.files.size() == 1)) {
          return Status::Corruption("unexpected shard file name '" +
                                    shard.files.back() + "' in '" + path +
                                    "'");
        }
        if (plus == std::string::npos) break;
        start = plus + 1;
      }
      manifest->shards.push_back(std::move(shard));
    } else {
      // Unknown keys are rejected, not skipped: a v2 reader must not
      // half-understand a future manifest.
      return Status::InvalidArgument("unknown manifest key '" + key +
                                     "' in '" + path + "'");
    }
  }
  if (manifest->algorithm.empty() || manifest->num_shards == 0 ||
      manifest->shards.size() != manifest->num_shards) {
    return Status::Corruption(
        "manifest '" + path + "' is incomplete (algorithm='" +
        manifest->algorithm +
        "', num_shards=" + std::to_string(manifest->num_shards) + ", " +
        std::to_string(manifest->shards.size()) + " shard records)");
  }
  return Status::Ok();
}

/// Best-effort retention after a new generation lands: keep the newest
/// two parseable manifests and every chain file they reference; remove
/// older manifests, orphaned shard files, and stray .tmp leftovers from
/// interrupted writes.  Failures here are ignored — retention never
/// outranks the checkpoint that just completed.
void PruneCheckpoints(const std::string& dir) {
  std::error_code ec;
  std::set<std::string> keep;
  size_t kept = 0;
  for (const uint64_t gen : ListManifestGenerations(dir)) {
    const std::string name = ManifestFileName(gen);
    if (kept < 2) {
      Manifest manifest;
      if (ParseManifestFile((std::filesystem::path(dir) / name).string(),
                            &manifest)
              .ok()) {
        keep.insert(name);
        for (const ManifestShard& shard : manifest.shards) {
          keep.insert(shard.files.begin(), shard.files.end());
        }
        ++kept;
        continue;
      }
      // An unparseable manifest is dead weight; fall through and drop it.
    }
    std::filesystem::remove(std::filesystem::path(dir) / name, ec);
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (keep.count(name) != 0) continue;
    const bool stray_tmp = name.ends_with(kDurableTmpSuffix);
    const bool chain_file =
        name.rfind("shard-", 0) == 0 &&
        (name.ends_with(".l1hh") || name.ends_with(".delta"));
    if (stray_tmp || chain_file) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

// Ring memory scales as num_shards * max_producers * queue_capacity; cap
// the slot count so a typo cannot request terabytes of rings.
constexpr size_t kMaxProducerSlots = 4096;

}  // namespace

// ---- Producer handle --------------------------------------------------

ShardedEngine::Producer::Producer(ShardedEngine* engine, size_t slot)
    : engine_(engine), slot_(slot) {
  staging_.resize(engine_->shards_.size());
  const size_t stage = std::max<size_t>(64, engine_->options_.drain_batch);
  for (auto& buffer : staging_) buffer.reserve(stage);
}

ShardedEngine::Producer::~Producer() {
  // Slot 0 is the engine's own handle; it dies with the engine and is
  // never recycled through RegisterProducer.
  if (slot_ != 0) engine_->ReleaseProducer(slot_);
}

void ShardedEngine::Producer::Update(uint64_t item, uint64_t weight) {
  const size_t shard = engine_->ShardOf(item);
  if (!engine_->windowed()) {
    for (uint64_t i = 0; i < weight; ++i) {
      engine_->PushBlocking(slot_, shard, &item, 1);
    }
    return;
  }
  engine_->IngestWindowed(
      weight, [this, shard, item](uint64_t, uint64_t count) {
        for (uint64_t i = 0; i < count; ++i) {
          engine_->PushBlocking(slot_, shard, &item, 1);
        }
      });
}

void ShardedEngine::Producer::UpdateBatch(std::span<const uint64_t> items) {
  if (!engine_->windowed()) {
    engine_->ScatterPush(slot_, staging_, items);
    return;
  }
  // Split the batch at global bucket boundaries: each chunk is enqueued
  // only once its bucket's rotation has fired, so shard buckets always
  // partition the same global position range.
  engine_->IngestWindowed(
      items.size(), [this, items](uint64_t offset, uint64_t count) {
        engine_->ScatterPush(slot_, staging_,
                             items.subspan(static_cast<size_t>(offset),
                                           static_cast<size_t>(count)));
      });
}

void ShardedEngine::Producer::UpdateColumn(const uint64_t* items, size_t n) {
  if (!engine_->windowed()) {
    PartitionPush(items, n);
    return;
  }
  engine_->IngestWindowed(n, [this, items](uint64_t offset, uint64_t count) {
    PartitionPush(items + offset, static_cast<size_t>(count));
  });
}

void ShardedEngine::Producer::PartitionPush(const uint64_t* items, size_t n) {
  ShardedEngine& e = *engine_;
  const size_t num_shards = e.shards_.size();
  if (num_shards == 1) {
    e.PushBlocking(slot_, 0, items, n);
    return;
  }
  // Tile so the scratch stays cache-resident; each tile makes one
  // contiguous ring push per occupied shard instead of one staging
  // append (+ occasional flush) per item.
  constexpr size_t kTile = 8192;
  part_shards_.resize(std::min(n, kTile));
  part_scratch_.resize(std::min(n, kTile));
  part_starts_.assign(num_shards + 1, 0);
  part_cursors_.assign(num_shards, 0);
  // The sweep below must agree with ShardOf (Mix64 then mod) bit for
  // bit — the differential test compares this route's shard streams
  // against the per-item scatter route.  For power-of-two K the modulo
  // reduces to a mask, which keeps the hot loop free of the 64-bit
  // divide and lets the compiler pipeline the mix across items.
  const bool pow2 = (num_shards & (num_shards - 1)) == 0;
  const uint64_t mask = num_shards - 1;
  for (size_t base = 0; base < n; base += kTile) {
    const size_t take = std::min(kTile, n - base);
    // Pass 1: shard ids (a pure Mix64 sweep) plus the per-shard
    // histogram.
    std::fill(part_starts_.begin(), part_starts_.end(), 0);
    if (pow2) {
      for (size_t i = 0; i < take; ++i) {
        const auto s = static_cast<uint32_t>(Mix64(items[base + i]) & mask);
        part_shards_[i] = s;
        ++part_starts_[s + 1];
      }
    } else {
      for (size_t i = 0; i < take; ++i) {
        const auto s =
            static_cast<uint32_t>(Mix64(items[base + i]) % num_shards);
        part_shards_[i] = s;
        ++part_starts_[s + 1];
      }
    }
    for (size_t s = 1; s <= num_shards; ++s) {
      part_starts_[s] += part_starts_[s - 1];
    }
    // Pass 2: scatter into contiguous per-shard runs.
    for (size_t s = 0; s < num_shards; ++s) part_cursors_[s] = part_starts_[s];
    for (size_t i = 0; i < take; ++i) {
      part_scratch_[part_cursors_[part_shards_[i]]++] = items[base + i];
    }
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t count = part_starts_[s + 1] - part_starts_[s];
      if (count == 0) continue;
      e.PushBlocking(slot_, s, part_scratch_.data() + part_starts_[s], count);
    }
  }
}

// ---- Construction -----------------------------------------------------

ShardedEngine::Shard::Shard(size_t producer_slots, size_t ring_capacity) {
  rings.reserve(producer_slots);
  for (size_t p = 0; p < producer_slots; ++p) {
    rings.push_back(std::make_unique<SpscRing<uint64_t>>(ring_capacity));
  }
}

std::unique_ptr<ShardedEngine> ShardedEngine::Create(
    const ShardedEngineOptions& options, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  if (options.num_shards == 0) {
    return fail(Status::InvalidArgument("num_shards must be >= 1"));
  }
  if (options.max_producers == 0) {
    return fail(Status::InvalidArgument(
        "max_producers must be >= 1 (slot 0 is the engine's own)"));
  }
  if (options.max_producers > kMaxProducerSlots) {
    return fail(Status::InvalidArgument(
        "max_producers " + std::to_string(options.max_producers) +
        " exceeds the sanity cap " + std::to_string(kMaxProducerSlots)));
  }
  Status make_status;
  auto probe = MakeSummary(options.algorithm, options.summary, &make_status);
  if (probe == nullptr) {
    // The factory's own reason: "unknown summary algorithm" for a bad
    // name, the specific windowed refusal (non-mergeable inner, hostile
    // geometry) for a windowed: spelling.
    return fail(std::move(make_status));
  }
  // The refusal rule is keyed off the adapter's own SupportsMerge, so a
  // structure becomes shardable the moment its Merge lands (bdw_optimal
  // did via the shared epoch schedule; lossy_counting and sticky_sampling
  // remain position-dependent and refused at K > 1).
  if (options.num_shards > 1 && !probe->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + options.algorithm +
        "' does not support Merge; the engine refuses to shard it "
        "(num_shards must be 1)"));
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));
  engine->shards_[0]->summary = std::move(probe);
  for (size_t s = 1; s < engine->shards_.size(); ++s) {
    engine->shards_[s]->summary =
        MakeSummary(options.algorithm, options.summary);
  }
  engine->BindWindows(/*restored_rotations=*/0);
  engine->StartWorkers();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

void ShardedEngine::BindWindows(uint64_t restored_rotations) {
  windows_.clear();
  if (dynamic_cast<SlidingWindowSummary*>(shards_[0]->summary.get()) ==
      nullptr) {
    return;
  }
  windows_.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto* window =
        static_cast<SlidingWindowSummary*>(shard->summary.get());
    // Shard-local update counts must never rotate a ring: all K rings
    // rotate together at global bucket boundaries, driven from here.
    window->set_external_rotation(true);
    windows_.push_back(window);
  }
  rotation_stride_ = windows_[0]->bucket_width();
  // Pre-thread-start stores: Restore preset slot 0's enqueued counters.
  uint64_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) total += ShardEnqueued(s);
  global_pos_.store(total, std::memory_order_relaxed);
  rotations_done_.store(restored_rotations, std::memory_order_relaxed);
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options)
    : options_(options) {
  // drain_batch == 0 would make every worker pop nothing forever and
  // Flush spin-wait indefinitely; clamp rather than hang.
  options_.drain_batch = std::max<size_t>(options_.drain_batch, 1);
  options_.max_producers = std::max<size_t>(options_.max_producers, 1);
  slots_.reserve(options_.max_producers);
  for (size_t p = 0; p < options_.max_producers; ++p) {
    slots_.push_back(std::make_unique<ProducerSlot>(options_.num_shards));
  }
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(options_.max_producers,
                                options_.queue_capacity));
  }
  slots_[0]->active = true;
  controller_.reset(new Producer(this, 0));
}

ShardedEngine::~ShardedEngine() {
  // Contract: external Producer handles are already destroyed (or idle
  // forever), so the enqueued counters are final; drain everything.
  Flush();
  {
    // Publish stop under park_mutex_ so a worker deciding to park cannot
    // miss it (the park predicate re-checks under the same mutex).
    std::lock_guard<std::mutex> lock(park_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  resume_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ShardedEngine::StartWorkers() {
  const size_t shard_count = shards_.size();
  size_t thread_count = options_.num_threads == 0 ? shard_count
                                                  : options_.num_threads;
  thread_count = std::min(std::max<size_t>(thread_count, 1), shard_count);
  workers_.reserve(thread_count);
  // Contiguous shard ranges, remainder spread over the first threads, so
  // every shard has exactly one consumer.
  const size_t base = shard_count / thread_count;
  const size_t extra = shard_count % thread_count;
  size_t first = 0;
  for (size_t t = 0; t < thread_count; ++t) {
    const size_t count = base + (t < extra ? 1 : 0);
    const size_t last = first + count;
    workers_.emplace_back(
        [this, first, last] { WorkerLoop(first, last); });
    first = last;
  }
}

// ---- Worker pool + pause gate -----------------------------------------

void ShardedEngine::WorkerLoop(size_t first_shard, size_t last_shard) {
  std::vector<uint64_t> batch(options_.drain_batch);
  // Resolved once per worker (registry lookup is a cold mutexed path);
  // increments below are relaxed striped adds, once per drained BATCH.
  obs::Counter* const items_ctr =
      obs::GetCounter("l1hh_engine_items_applied_total");
  obs::Histogram* const drain_hist =
      obs::GetHistogram("l1hh_engine_drain_batch_items");
  IdleBackoff backoff;
  while (true) {
    if (pause_.load(std::memory_order_acquire)) WorkerPark();
    size_t drained = 0;
    for (size_t s = first_shard; s < last_shard; ++s) {
      Shard& shard = *shards_[s];
      // Round-robin over the shard's P producer rings, one batch each,
      // so no slot can starve another.
      for (auto& ring : shard.rings) {
        const size_t n = ring->PopBatch(batch.data(), batch.size());
        if (n == 0) continue;
        drained += n;
        // Columnar drain: same state as UpdateBatch (the differential
        // battery pins the equivalence) but the adapters' slice-tuned
        // loops — count_min runs its hash pre-pass per drained batch.
        shard.summary->UpdateColumn(batch.data(), n);
        // Release-publish the summary mutations; Flush acquires.
        shard.applied.fetch_add(n, std::memory_order_release);
        if (obs::Enabled()) {
          // Occupancy at pop time was n plus whatever is still queued.
          // Single-writer high-water (this worker owns the shard), so a
          // plain load/compare/store suffices — no RMW on the hot path.
          const uint64_t occ = n + ring->ApproxSize();
          if (occ > shard.ring_high_water.load(std::memory_order_relaxed)) {
            shard.ring_high_water.store(occ, std::memory_order_relaxed);
          }
          drain_hist->Observe(n);
          items_ctr->Inc(n);
        }
      }
    }
    if (drained != 0) {
      backoff.Reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // One more pass raced nothing in: all owned rings were empty and no
      // producer can enqueue after stop (the destructor flushed first).
      return;
    }
    backoff.Idle();
  }
}

void ShardedEngine::WorkerPark() {
  std::unique_lock<std::mutex> lock(park_mutex_);
  ++parked_workers_;
  park_cv_.notify_all();
  resume_cv_.wait(lock, [this] {
    return !pause_.load(std::memory_order_relaxed) ||
           stop_.load(std::memory_order_relaxed);
  });
  --parked_workers_;
}

void ShardedEngine::PauseWorkers() {
  static obs::Histogram* const park_hist =
      obs::GetHistogram("l1hh_engine_park_wait_ns");
  const bool obs_on = obs::Enabled();
  const uint64_t t0 = obs_on ? obs::TraceRing::NowNs() : 0;
  std::unique_lock<std::mutex> lock(park_mutex_);
  pause_.store(true, std::memory_order_release);
  park_cv_.wait(lock, [this] { return parked_workers_ == workers_.size(); });
  // All workers are inside WorkerPark with the summaries untouched; the
  // mutex handoff orders their last drains before our reads.
  if (obs_on) {
    park_hist->Observe(obs::TraceRing::NowNs() - t0);
  }
}

void ShardedEngine::ResumeWorkers() {
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    pause_.store(false, std::memory_order_release);
  }
  resume_cv_.notify_all();
}

// ---- Ingestion --------------------------------------------------------

size_t ShardedEngine::ShardOf(uint64_t item) const {
  // Mix before reducing: raw ids are often sequential, and a plain modulo
  // would stripe them instead of hashing them.
  return shards_.size() == 1
             ? 0
             : static_cast<size_t>(Mix64(item) % shards_.size());
}

void ShardedEngine::PushBlocking(size_t slot, size_t shard_index,
                                 const uint64_t* data, size_t n) {
  SpscRing<uint64_t>& ring = *shards_[shard_index]->rings[slot];
  IdleBackoff backoff;
  size_t done = 0;
  while (done < n) {
    const size_t pushed = ring.PushSome(data + done, n - done);
    if (pushed == 0) {
      backoff.Idle();  // backpressure: ring full, wait for the drain
      continue;
    }
    backoff.Reset();
    done += pushed;
  }
  slots_[slot]->enqueued[shard_index].value.fetch_add(
      n, std::memory_order_release);
}

void ShardedEngine::RotateAtBoundary(uint64_t bucket) {
  static obs::Histogram* const wait_hist =
      obs::GetHistogram("l1hh_engine_rotation_wait_ns");
  static obs::Counter* const rotations_ctr =
      obs::GetCounter("l1hh_engine_rotations_total");
  const bool obs_on = obs::Enabled();
  const uint64_t t0 = obs_on ? obs::TraceRing::NowNs() : 0;
  IdleBackoff backoff;
  // Every earlier bucket has its own boundary owner; wait for all of
  // them, then for every position before this boundary to be applied
  // (positions at or past it are still gated, so applied cannot
  // overshoot).  Both waits happen OUTSIDE state_mutex_: a concurrent
  // query holds that mutex while the workers are parked, and applied
  // could never advance if we held it here.
  while (rotations_done_.load(std::memory_order_acquire) < bucket - 1) {
    backoff.Idle();
  }
  while (TotalApplied() < bucket * rotation_stride_) backoff.Idle();
  {
    // All rings are empty (everything enqueued is applied) and every
    // producer is gated, so the workers cannot touch the summaries; the
    // mutex excludes the only other writers/readers — queries and
    // checkpoints.
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto* window : windows_) window->Rotate();
    // Rotation changes state without moving the applied count; a cached
    // merge would silently keep serving the evicted bucket.
    merged_valid_ = false;
    // Release-publish: a producer that acquires the new count also sees
    // the rotated windows, and its subsequent ring pushes carry that
    // ordering through to the workers.
    rotations_done_.store(bucket, std::memory_order_release);
  }
  if (obs_on) {
    const uint64_t waited = obs::TraceRing::NowNs() - t0;
    wait_hist->Observe(waited);
    rotations_ctr->Inc();
    obs::Trace(obs::Severity::kDebug, "engine.rotation",
               static_cast<int64_t>(bucket), static_cast<int64_t>(waited));
  }
}

template <typename PushFn>
void ShardedEngine::IngestWindowed(uint64_t total, PushFn&& push) {
  if (total == 0) return;
  // One fetch_add claims a contiguous global position range; bucket
  // membership is decided by position, never by arrival order.
  const uint64_t start =
      global_pos_.fetch_add(total, std::memory_order_relaxed);
  uint64_t offset = 0;
  while (offset < total) {
    const uint64_t pos = start + offset;
    const uint64_t bucket = pos / rotation_stride_;
    if (bucket > rotations_done_.load(std::memory_order_acquire)) {
      if (pos == bucket * rotation_stride_) {
        // This claim owns the bucket's first position, so it performs
        // the lockstep rotation (lazy, matching the standalone ring: the
        // boundary bucket stays live until the first item PAST the
        // boundary arrives, which is this one).
        RotateAtBoundary(bucket);
      } else {
        // Another claim owns the boundary; wait for its rotation.
        IdleBackoff backoff;
        while (rotations_done_.load(std::memory_order_acquire) < bucket) {
          backoff.Idle();
        }
      }
    }
    const uint64_t take =
        std::min(total - offset, (bucket + 1) * rotation_stride_ - pos);
    push(offset, take);
    offset += take;
  }
}

void ShardedEngine::Update(uint64_t item, uint64_t weight) {
  controller_->Update(item, weight);
}

void ShardedEngine::UpdateBatch(std::span<const uint64_t> items) {
  controller_->UpdateBatch(items);
}

void ShardedEngine::UpdateColumn(const uint64_t* items, size_t n) {
  controller_->UpdateColumn(items, n);
}

void ShardedEngine::ScatterPush(size_t slot,
                                std::vector<std::vector<uint64_t>>& staging,
                                std::span<const uint64_t> items) {
  if (shards_.size() == 1) {
    // No partitioning needed; feed the ring directly.
    PushBlocking(slot, 0, items.data(), items.size());
    return;
  }
  const size_t stage_cap = std::max<size_t>(64, options_.drain_batch);
  for (const uint64_t item : items) {
    const size_t s = ShardOf(item);
    std::vector<uint64_t>& stage = staging[s];
    stage.push_back(item);
    if (stage.size() >= stage_cap) {
      PushBlocking(slot, s, stage.data(), stage.size());
      stage.clear();
    }
  }
  FlushStaging(slot, staging);
}

void ShardedEngine::FlushStaging(
    size_t slot, std::vector<std::vector<uint64_t>>& staging) {
  for (size_t s = 0; s < staging.size(); ++s) {
    if (staging[s].empty()) continue;
    PushBlocking(slot, s, staging[s].data(), staging[s].size());
    staging[s].clear();
  }
}

// ---- Producer slots ---------------------------------------------------

std::unique_ptr<ShardedEngine::Producer> ShardedEngine::RegisterProducer(
    Status* status) {
  std::lock_guard<std::mutex> lock(producers_mutex_);
  for (size_t p = 1; p < slots_.size(); ++p) {
    if (slots_[p]->active) continue;
    slots_[p]->active = true;
    if (status != nullptr) *status = Status::Ok();
    obs::GetCounter("l1hh_engine_producer_claims_total")->Inc();
    obs::Trace(obs::Severity::kInfo, "engine.slot_claim",
               static_cast<int64_t>(p));
    return std::unique_ptr<Producer>(new Producer(this, p));
  }
  obs::GetCounter("l1hh_engine_producer_claim_failures_total")->Inc();
  obs::Trace(obs::Severity::kWarn, "engine.slot_exhausted",
             static_cast<int64_t>(slots_.size() - 1));
  if (status != nullptr) {
    *status = Status::FailedPrecondition(
        "all " + std::to_string(slots_.size() - 1) +
        " external producer slots are live (max_producers = " +
        std::to_string(slots_.size()) +
        " includes the engine's own slot 0)");
  }
  return nullptr;
}

void ShardedEngine::ReleaseProducer(size_t slot) {
  // The mutex orders the departing owner's last pushes before any claim
  // by the slot's next owner.
  std::lock_guard<std::mutex> lock(producers_mutex_);
  slots_[slot]->active = false;
  obs::GetCounter("l1hh_engine_producer_releases_total")->Inc();
  obs::Trace(obs::Severity::kInfo, "engine.slot_release",
             static_cast<int64_t>(slot));
}

size_t ShardedEngine::active_producers() const {
  std::lock_guard<std::mutex> lock(producers_mutex_);
  size_t live = 0;
  for (size_t p = 1; p < slots_.size(); ++p) {
    if (slots_[p]->active) ++live;
  }
  return live;
}

// ---- Quiescence + queries ---------------------------------------------

uint64_t ShardedEngine::ShardEnqueued(size_t shard_index) const {
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->enqueued[shard_index].value.load(
        std::memory_order_acquire);
  }
  return total;
}

uint64_t ShardedEngine::TotalApplied() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

void ShardedEngine::Flush() {
  static obs::Histogram* const flush_hist =
      obs::GetHistogram("l1hh_engine_flush_wait_ns");
  static obs::Counter* const flush_ctr =
      obs::GetCounter("l1hh_engine_flushes_total");
  const bool obs_on = obs::Enabled();
  const uint64_t t0 = obs_on ? obs::TraceRing::NowNs() : 0;
  // Staging buffers need no draining here: ScatterPush always flushes
  // them before returning, so they are empty between public calls.
  IdleBackoff backoff;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t target = ShardEnqueued(s);
    while (shards_[s]->applied.load(std::memory_order_acquire) < target) {
      backoff.Idle();
    }
  }
  if (obs_on) {
    flush_hist->Observe(obs::TraceRing::NowNs() - t0);
    flush_ctr->Inc();
  }
}

uint64_t ShardedEngine::ItemsProcessed() const { return TotalApplied(); }

std::vector<uint64_t> ShardedEngine::ShardItemCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->applied.load(std::memory_order_acquire));
  }
  return counts;
}

EngineMetrics ShardedEngine::Metrics() const {
  EngineMetrics m;
  m.num_shards = shards_.size();
  m.num_threads = workers_.size();
  m.max_producers = slots_.size();
  m.rotations = rotations_done_.load(std::memory_order_acquire);
  m.shard_applied.reserve(shards_.size());
  m.ring_high_water.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const uint64_t applied = shard->applied.load(std::memory_order_acquire);
    m.shard_applied.push_back(applied);
    m.items_applied += applied;
    m.ring_high_water.push_back(
        shard->ring_high_water.load(std::memory_order_relaxed));
  }
  std::lock_guard<std::mutex> lock(producers_mutex_);
  m.slot_enqueued.resize(slots_.size(), 0);
  m.slot_active.resize(slots_.size(), 0);
  for (size_t p = 0; p < slots_.size(); ++p) {
    uint64_t enqueued = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      enqueued +=
          slots_[p]->enqueued[s].value.load(std::memory_order_acquire);
    }
    m.slot_enqueued[p] = enqueued;
    const bool live = p == 0 || slots_[p]->active;
    m.slot_active[p] = live ? 1 : 0;
    if (p > 0 && live) ++m.active_producers;
  }
  return m;
}

void ShardedEngine::PublishMetrics() const {
  const EngineMetrics m = Metrics();
  obs::GetGauge("l1hh_engine_active_producers")
      ->Set(static_cast<int64_t>(m.active_producers));
  obs::GetGauge("l1hh_engine_max_producers")
      ->Set(static_cast<int64_t>(m.max_producers));
  for (size_t s = 0; s < m.num_shards; ++s) {
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    obs::GetGauge("l1hh_engine_shard_applied", label)
        ->Set(static_cast<int64_t>(m.shard_applied[s]));
    obs::GetGauge("l1hh_engine_ring_occupancy_high_water", label)
        ->Set(static_cast<int64_t>(m.ring_high_water[s]));
  }
  for (size_t p = 0; p < m.slot_enqueued.size(); ++p) {
    obs::GetGauge("l1hh_engine_slot_enqueued",
                  "slot=\"" + std::to_string(p) + "\"")
        ->Set(static_cast<int64_t>(m.slot_enqueued[p]));
  }
}

const Summary& ShardedEngine::RebuildMergedLocked() {
  if (shards_.size() == 1) return *shards_[0]->summary;
  const uint64_t epoch = TotalApplied();
  const uint64_t rotations =
      rotations_done_.load(std::memory_order_acquire);
  if (merged_valid_ && epoch == merged_epoch_ &&
      rotations == merged_rotations_) {
    return *merged_;
  }
  // Rebuild: a fresh empty instance absorbs every shard.  All shards were
  // constructed from the same options/seed, so the merges cannot fail on
  // compatibility; if one does, surface it loudly (a silent partial merge
  // would corrupt the global report).
  static obs::Counter* const rebuild_ctr =
      obs::GetCounter("l1hh_engine_merge_rebuilds_total");
  static obs::Histogram* const rebuild_hist =
      obs::GetHistogram("l1hh_engine_merge_rebuild_ns");
  obs::ScopedPhase phase("merge_rebuild");  // only the cache-miss branch
  const bool obs_on = obs::Enabled();
  const uint64_t t0 = obs_on ? obs::TraceRing::NowNs() : 0;
  merged_ = MakeSummary(options_.algorithm, options_.summary);
  for (const auto& shard : shards_) {
    const Status s = merged_->Merge(*shard->summary);
    if (!s.ok()) {
      std::fprintf(stderr, "ShardedEngine: shard merge failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  }
  merged_epoch_ = epoch;
  merged_rotations_ = rotations;
  merged_valid_ = true;
  if (obs_on) {
    rebuild_ctr->Inc();
    rebuild_hist->Observe(obs::TraceRing::NowNs() - t0);
  }
  return *merged_;
}

const Summary& ShardedEngine::MergedView() {
  // LEGACY contract (see header): controller thread only, producers
  // quiescent — the returned reference is read after the workers resume.
  std::lock_guard<std::mutex> lock(state_mutex_);
  Flush();
  PauseWorkers();
  const Summary& view = RebuildMergedLocked();
  ResumeWorkers();
  return view;
}

double ShardedEngine::Estimate(uint64_t item) {
  // Inert (flattened) when a serving front end already opened a verb span
  // on this thread; stands alone for direct embedders.
  obs::QuerySpan span("estimate");
  std::lock_guard<std::mutex> lock(state_mutex_);
  {
    obs::ScopedPhase park("park_wait");
    Flush();
    PauseWorkers();
  }
  const Summary& view = RebuildMergedLocked();
  double estimate;
  {
    obs::ScopedPhase report("report");
    estimate = view.Estimate(item);
  }
  ResumeWorkers();
  return estimate;
}

std::vector<double> ShardedEngine::EstimateBatch(
    const std::vector<uint64_t>& items) {
  obs::QuerySpan span("estimate");
  std::lock_guard<std::mutex> lock(state_mutex_);
  {
    obs::ScopedPhase park("park_wait");
    Flush();
    PauseWorkers();
  }
  const Summary& view = RebuildMergedLocked();
  std::vector<double> estimates;
  {
    obs::ScopedPhase report("report");
    estimates.reserve(items.size());
    for (const uint64_t item : items) {
      estimates.push_back(view.Estimate(item));
    }
  }
  ResumeWorkers();
  return estimates;
}

std::vector<ItemEstimate> ShardedEngine::HeavyHitters(double phi) {
  obs::QuerySpan span("heavy");
  std::lock_guard<std::mutex> lock(state_mutex_);
  {
    obs::ScopedPhase park("park_wait");
    Flush();
    PauseWorkers();
  }
  const Summary& view = RebuildMergedLocked();
  std::vector<ItemEstimate> report;
  {
    obs::ScopedPhase phase("report");
    report = view.HeavyHitters(phi);
  }
  ResumeWorkers();
  return report;
}

size_t ShardedEngine::MemoryUsageBytes() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Flush();
  PauseWorkers();
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->summary->MemoryUsageBytes();
    for (const auto& ring : shard->rings) {
      total += ring->capacity() * sizeof(uint64_t);
    }
  }
  if (merged_valid_) total += merged_->MemoryUsageBytes();
  ResumeWorkers();
  return total;
}

// ---- Checkpoint / Restore ---------------------------------------------

Status ShardedEngine::CaptureFramesLocked(
    const std::vector<ShardBaseline>& baselines, uint32_t max_delta_chain,
    std::vector<ShardFrame>* frames, uint64_t* total_applied) {
  frames->clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t applied =
        shards_[s]->applied.load(std::memory_order_acquire);
    const uint64_t rotations =
        windows_.empty() ? 0 : windows_[s]->rotations();
    const ShardBaseline base =
        s < baselines.size() ? baselines[s] : ShardBaseline{};
    if (base.valid && base.applied == applied &&
        base.rotations == rotations) {
      continue;  // clean: the consumer already holds exactly this state
    }
    ShardFrame frame;
    frame.shard = s;
    frame.applied = applied;
    frame.rotations = rotations;
    // A delta only exists for a windowed shard whose baseline precedes
    // the live clocks, whose dirty tail still fits inside the ring, and
    // whose chain has not hit the replay-length bound.
    const bool can_delta =
        base.valid && !windows_.empty() && base.chain < max_delta_chain &&
        base.applied <= applied && base.rotations <= rotations &&
        rotations - base.rotations + 1 < windows_[s]->num_buckets();
    if (can_delta) {
      frame.delta = true;
      const Status saved = SaveSummaryDelta(
          *shards_[s]->summary, base.rotations, base.applied, &frame.bytes);
      if (!saved.ok()) return saved;
    } else {
      const Status saved = SaveSummary(*shards_[s]->summary, &frame.bytes);
      if (!saved.ok()) return saved;
    }
    frames->push_back(std::move(frame));
  }
  if (total_applied != nullptr) *total_applied = TotalApplied();
  return Status::Ok();
}

Status ShardedEngine::CaptureFrames(
    const std::vector<ShardBaseline>& baselines, uint32_t max_delta_chain,
    std::vector<ShardFrame>* frames, uint64_t* total_applied) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Flush();
  PauseWorkers();
  const Status result =
      CaptureFramesLocked(baselines, max_delta_chain, frames, total_applied);
  ResumeWorkers();
  return result;
}

Status ShardedEngine::WriteCheckpoint(const std::string& dir,
                                      bool incremental) {
  const char* const kind = incremental ? "delta" : "full";
  obs::Trace(obs::Severity::kInfo, "checkpoint.begin", incremental ? 1 : 0);
  const uint64_t t0 = obs::TraceRing::NowNs();
  uint64_t frame_bytes = 0;
  uint64_t full_frames = 0;
  uint64_t delta_frames = 0;
  std::lock_guard<std::mutex> lock(state_mutex_);
  Flush();
  PauseWorkers();
  Status result = [&]() -> Status {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create checkpoint directory '" + dir +
                             "': " + ec.message());
    }
    const std::vector<uint64_t> gens = ListManifestGenerations(dir);

    // Baselines come from the newest parseable manifest ON DISK — not
    // from engine memory — so incremental checkpointing survives process
    // restarts and never trusts a generation it cannot re-read.
    Manifest base_manifest;
    bool have_base = false;
    if (incremental) {
      for (const uint64_t gen : gens) {
        Manifest candidate;
        if (ParseManifestFile(
                (std::filesystem::path(dir) / ManifestFileName(gen))
                    .string(),
                &candidate)
                .ok() &&
            candidate.algorithm == options_.algorithm &&
            candidate.num_shards == shards_.size()) {
          base_manifest = std::move(candidate);
          have_base = true;
          break;
        }
      }
    }
    std::vector<ShardBaseline> baselines;
    if (have_base) {
      baselines.resize(shards_.size());
      for (size_t s = 0; s < shards_.size(); ++s) {
        baselines[s].valid = true;
        baselines[s].applied = base_manifest.shards[s].applied;
        baselines[s].rotations = base_manifest.shards[s].rotations;
        baselines[s].chain = static_cast<uint32_t>(
            base_manifest.shards[s].files.size() - 1);
      }
    }
    std::vector<ShardFrame> frames;
    uint64_t total_applied = 0;
    Status s = CaptureFramesLocked(baselines, kMaxDeltaChain, &frames,
                                   &total_applied);
    if (!s.ok()) return s;

    const uint64_t gen = (gens.empty() ? 0 : gens.front()) + 1;
    // Each shard's manifest record: the baseline chain carried forward,
    // overridden by whatever this generation captured for it.
    std::vector<ManifestShard> records(shards_.size());
    if (have_base) records = base_manifest.shards;
    for (ShardFrame& frame : frames) {
      ManifestShard& record = records[frame.shard];
      record.applied = frame.applied;
      record.rotations = frame.rotations;
      frame_bytes += frame.bytes.size();
      if (frame.delta) {
        ++delta_frames;
      } else {
        ++full_frames;
      }
      if (frame.delta) {
        record.files.push_back(ShardDeltaFileName(frame.shard, gen));
      } else {
        record.files.clear();
        record.files.push_back(ShardFullFileName(frame.shard, gen));
      }
      s = DurableWriteFile(
          (std::filesystem::path(dir) / record.files.back()).string(),
          std::span<const uint8_t>(frame.bytes));
      if (!s.ok()) return s;
    }
    // The manifest goes last: until its durable rename lands, Restore
    // still resolves to the previous generation, so a crash at any
    // earlier write point costs nothing.
    std::ostringstream text;
    text << kManifestHeader << "\n"
         << "algorithm=" << options_.algorithm << "\n"
         << "num_shards=" << shards_.size() << "\n"
         << "generation=" << gen << "\n"
         << "items_processed=" << total_applied << "\n";
    for (size_t sh = 0; sh < records.size(); ++sh) {
      text << "shard=" << sh << ' ' << records[sh].applied << ' '
           << records[sh].rotations << ' ';
      for (size_t f = 0; f < records[sh].files.size(); ++f) {
        if (f != 0) text << '+';
        text << records[sh].files[f];
      }
      text << "\n";
    }
    s = DurableWriteFile(
        (std::filesystem::path(dir) / ManifestFileName(gen)).string(),
        text.str());
    if (!s.ok()) return s;
    PruneCheckpoints(dir);
    return Status::Ok();
  }();
  ResumeWorkers();
  if (result.ok()) {
    obs::GetCounter("l1hh_io_checkpoints_total",
                    std::string("kind=\"") + kind + "\"")
        ->Inc();
    obs::GetCounter("l1hh_io_checkpoint_frames_total", "kind=\"full\"")
        ->Inc(full_frames);
    obs::GetCounter("l1hh_io_checkpoint_frames_total", "kind=\"delta\"")
        ->Inc(delta_frames);
    obs::GetCounter("l1hh_io_checkpoint_bytes_total")->Inc(frame_bytes);
    obs::GetHistogram("l1hh_io_checkpoint_ns")
        ->Observe(obs::TraceRing::NowNs() - t0);
    obs::Trace(obs::Severity::kInfo, "checkpoint.commit",
               static_cast<int64_t>(full_frames + delta_frames),
               static_cast<int64_t>(frame_bytes));
  } else {
    obs::GetCounter("l1hh_io_checkpoint_failures_total")->Inc();
    obs::Trace(obs::Severity::kWarn, "checkpoint.fail");
  }
  return result;
}

Status ShardedEngine::Checkpoint(const std::string& dir) {
  return WriteCheckpoint(dir, /*incremental=*/false);
}

Status ShardedEngine::CheckpointDelta(const std::string& dir) {
  return WriteCheckpoint(dir, /*incremental=*/true);
}

std::unique_ptr<ShardedEngine> ShardedEngine::Restore(
    const std::string& dir, const ShardedEngineOptions& exec,
    Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  const std::vector<uint64_t> gens = ListManifestGenerations(dir);
  if (gens.empty()) {
    return fail(Status::InvalidArgument(
        "'" + dir + "' is not a checkpoint directory (no " +
        kManifestPrefix + "<gen>)"));
  }
  // Newest complete generation wins: any failure inside a generation —
  // torn manifest, missing or corrupt chain file, inconsistent clocks —
  // falls back to the next older one, so a crash mid-checkpoint costs at
  // most the work since the previous checkpoint, never the directory.
  Status newest_error;
  for (const uint64_t gen : gens) {
    Status attempt;
    auto engine = RestoreGeneration(dir, gen, exec, &attempt);
    if (engine != nullptr) {
      if (status != nullptr) *status = Status::Ok();
      return engine;
    }
    // This generation was torn or corrupt; fall back to the next older
    // one (counted so operators can see silent data-loss near-misses).
    obs::GetCounter("l1hh_io_restore_fallbacks_total")->Inc();
    obs::Trace(obs::Severity::kWarn, "checkpoint.fallback",
               static_cast<int64_t>(gen));
    if (newest_error.ok()) newest_error = std::move(attempt);
  }
  return fail(std::move(newest_error));
}

std::unique_ptr<ShardedEngine> ShardedEngine::RestoreGeneration(
    const std::string& dir, uint64_t generation,
    const ShardedEngineOptions& exec, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedEngine> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  const std::string manifest_path =
      (std::filesystem::path(dir) / ManifestFileName(generation)).string();
  Manifest manifest;
  Status parsed = ParseManifestFile(manifest_path, &manifest);
  if (!parsed.ok()) return fail(std::move(parsed));
  const std::string& algorithm = manifest.algorithm;
  const uint64_t num_shards = manifest.num_shards;

  std::vector<std::unique_ptr<Summary>> loaded;
  loaded.reserve(manifest.shards.size());
  for (size_t sh = 0; sh < manifest.shards.size(); ++sh) {
    const ManifestShard& record = manifest.shards[sh];
    Status load_status;
    auto summary = LoadSummaryFromFile(
        (std::filesystem::path(dir) / record.files[0]).string(),
        &load_status);
    if (summary == nullptr) return fail(std::move(load_status));
    if (summary->Name() != algorithm) {
      return fail(Status::Corruption(
          "shard file '" + record.files[0] + "' holds '" +
          std::string(summary->Name()) + "', manifest says '" + algorithm +
          "'"));
    }
    // Replay the delta chain in manifest order; every delta's embedded
    // base clocks must match the state the previous file replayed to
    // (ApplyTail enforces it), so a chain spliced across checkpoints is
    // a Corruption here, not a silently wrong window.
    for (size_t f = 1; f < record.files.size(); ++f) {
      const Status applied = ApplySummaryDeltaFromFile(
          (std::filesystem::path(dir) / record.files[f]).string(),
          summary.get());
      if (!applied.ok()) return fail(applied);
    }
    if (summary->ItemsProcessed() != record.applied) {
      return fail(Status::Corruption(
          "shard " + std::to_string(sh) + " chain replays to " +
          std::to_string(summary->ItemsProcessed()) +
          " items, manifest '" + manifest_path + "' says " +
          std::to_string(record.applied)));
    }
    if (const auto* window =
            dynamic_cast<const SlidingWindowSummary*>(summary.get());
        window != nullptr && window->rotations() != record.rotations) {
      return fail(Status::Corruption(
          "shard " + std::to_string(sh) + " chain replays to " +
          std::to_string(window->rotations()) + " rotations, manifest '" +
          manifest_path + "' says " + std::to_string(record.rotations)));
    }
    loaded.push_back(std::move(summary));
  }
  if (num_shards > 1 && !loaded[0]->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + algorithm + "' does not support Merge; a multi-shard "
        "checkpoint of it cannot be valid"));
  }
  // All shards must come from ONE checkpoint: same options and seed, or
  // the first MergedView() query would fail on Merge compatibility (and
  // abort).  Catch a spliced-in foreign shard file here, as a Status.
  const SummaryOptions base = loaded[0]->Options();
  for (size_t s = 1; s < loaded.size(); ++s) {
    if (!(loaded[s]->Options() == base)) {
      return fail(Status::Corruption(
          "shard " + std::to_string(s) + "'s chain was built with "
          "different options or seed than shard 0's; not shards of one "
          "checkpoint"));
    }
  }

  // Windowed checkpoints additionally require rotation-aligned rings:
  // every shard window must have crossed the same number of global bucket
  // boundaries, or the restored rings would not be bucket-wise mergeable.
  uint64_t restored_rotations = 0;
  if (const auto* window0 =
          dynamic_cast<const SlidingWindowSummary*>(loaded[0].get())) {
    restored_rotations = window0->rotations();
    for (size_t s = 1; s < loaded.size(); ++s) {
      const auto* window =
          static_cast<const SlidingWindowSummary*>(loaded[s].get());
      if (window->rotations() != restored_rotations) {
        return fail(Status::Corruption(
            "shard " + std::to_string(s) + " rotated " +
            std::to_string(window->rotations()) + " times, shard 0 " +
            std::to_string(restored_rotations) +
            "; not windows of one lockstep checkpoint"));
      }
    }
    uint64_t total = 0;
    for (const auto& summary : loaded) total += summary->ItemsProcessed();
    const uint64_t stride = window0->bucket_width();
    // The rotation protocol admits floor((total-1)/stride) rotations for
    // any item total — and, exactly AT a boundary, one more: a
    // multi-producer checkpoint can catch the state where the boundary
    // claimant has rotated but its boundary item is not yet applied
    // (single-producer lazy rotation only ever checkpoints the former).
    // Derive by DIVISION: `restored_rotations` comes off the wire, and
    // multiplying by it could wrap u64 past this check (the same
    // hardening the snapshot width*depth checks got in PR 4).
    const uint64_t lazy_rotations = total == 0 ? 0 : (total - 1) / stride;
    const bool at_boundary = total != 0 && total % stride == 0;
    // Also bound it so the global clock arithmetic in IngestWindowed
    // ((bucket + 1) * stride) cannot wrap u64 (which would mis-split
    // claims and silently break rotation).
    if (lazy_rotations >= ~uint64_t{0} / stride - 1) {
      return fail(Status::Corruption(
          "checkpoint claims an implausible combined item count " +
          std::to_string(total)));
    }
    const bool plausible =
        restored_rotations == lazy_rotations ||
        (at_boundary && restored_rotations == total / stride);
    if (!plausible) {
      return fail(Status::Corruption(
          "checkpoint window rotation count " +
          std::to_string(restored_rotations) +
          " disagrees with the combined item count " +
          std::to_string(total) + " (bucket width " +
          std::to_string(stride) + " implies " +
          std::to_string(lazy_rotations) +
          (at_boundary
               ? " or " + std::to_string(total / stride)
               : "") +
          ")"));
    }
  }

  ShardedEngineOptions options = exec;
  options.algorithm = algorithm;
  options.summary = loaded[0]->Options();
  options.num_shards = static_cast<size_t>(num_shards);
  if (options.max_producers == 0 ||
      options.max_producers > kMaxProducerSlots) {
    return fail(Status::InvalidArgument(
        "exec.max_producers " + std::to_string(options.max_producers) +
        " is out of range [1, " + std::to_string(kMaxProducerSlots) + "]"));
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));
  for (size_t s = 0; s < engine->shards_.size(); ++s) {
    const uint64_t processed = loaded[s]->ItemsProcessed();
    engine->shards_[s]->summary = std::move(loaded[s]);
    // Pre-thread-start stores: the worker pool has not launched yet.
    // The restored prefix is credited to slot 0 — the clock only needs
    // the sums, not the per-slot attribution.
    engine->slots_[0]->enqueued[s].value.store(processed,
                                               std::memory_order_relaxed);
    engine->shards_[s]->applied.store(processed, std::memory_order_relaxed);
  }
  engine->BindWindows(restored_rotations);
  engine->StartWorkers();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

std::unique_ptr<ShardedEngine> ShardedEngine::Restore(const std::string& dir,
                                                      Status* status) {
  return Restore(dir, ShardedEngineOptions{}, status);
}

}  // namespace l1hh
