// ShardedEngine — the scale-out layer over the unified Summary interface.
// Architecture walkthrough: docs/ENGINE.md.
//
// The paper's structures are mergeable (Misra-Gries and Space-Saving by
// the classic merge, the linear sketches cell-wise, BdwSimple by sample
// concatenation, BdwOptimal by epoch-reconciled table sums), which is
// exactly the property Woodruff's survey singles out as the route to
// distributed and parallel deployment.  The engine exploits it: the item
// universe is hash-partitioned across K shards, each shard owns an
// independent instance of one factory-registered Summary (same name,
// same options, same seed — the Merge compatibility precondition), and
// every shard is fed through lock-free SPSC ring buffers drained in
// batches by a pool of worker threads.  Global answers come from merging
// the shard summaries on demand behind a merge-epoch cache, so repeated
// queries over an unchanged stream pay for one merge.
//
// Ingestion is a K x P ring GRID: P producer slots (slot 0 belongs to the
// engine's own Update/UpdateBatch entry points; slots 1..P-1 are claimed
// with RegisterProducer) each own one SPSC ring PER SHARD, so P producer
// threads push concurrently without a CAS loop — every ring still has
// exactly one producer (its slot owner) and exactly one consumer (the
// worker that owns the shard, draining all P of the shard's rings
// round-robin in batches).  Quiescence is producer-aware: each slot keeps
// a per-shard enqueued counter, each shard keeps one applied counter, and
// Flush waits until applied catches the acquire-summed enqueued targets.
//
// Because shards see disjoint substreams (every occurrence of an item
// lands on the same shard), the merged summary answers for the
// concatenated stream exactly as a single summary would — within each
// structure's documented merge error (see docs/ALGORITHMS.md's
// mergeability table).  This includes the paper's space-optimal
// Algorithm 2 (`bdw_optimal`), whose accelerated-counter epochs follow a
// schedule shared by all shards and are reconciled at merge time
// (core/bdw_optimal.h).  Structures that do not support Merge
// (lossy_counting, sticky_sampling) are refused at construction for
// K > 1 rather than silently answering wrong; K == 1 degenerates to a
// single-summary engine (still useful for moving ingestion off the
// caller's thread).
//
// ---- Thread-safety contract (what tests/multi_producer_test.cc,
// tests/sharded_engine_test.cc and the CI TSan job enforce) -------------
//
//   * Update / UpdateBatch on the ENGINE are slot 0's producer side: one
//     thread at a time (the controller).  Each Producer handle from
//     RegisterProducer owns its own slot and may ingest from its own
//     thread CONCURRENTLY with the controller and with other handles; a
//     single handle must not be shared between threads without external
//     synchronization (it owns the SPSC producer side of its rings and
//     its scatter-staging buffers).
//   * The engine's internal workers are the only ring consumers, and
//     each shard is owned by exactly one worker.
//   * Flush / Estimate / HeavyHitters / MemoryUsageBytes / Checkpoint
//     are safe from ANY thread, concurrently with live producers: they
//     serialize on an internal state mutex, wait for every item enqueued
//     at entry to be applied, park the workers, and read the shard
//     summaries only while parked (results are copied out, giving
//     readers snapshot isolation).  Items enqueued while the query runs
//     are simply not in that snapshot yet.
//   * MergedView still returns a REFERENCE into engine state, so it
//     keeps the stricter legacy contract: controller thread only, no
//     concurrently-active producer handles, reference valid until the
//     next non-const engine call.  Concurrent callers want HeavyHitters
//     / Estimate, which copy.
//   * ItemsProcessed / ShardItemCounts / ShardOf and the plain getters
//     are safe from any thread at any time (atomic reads or immutable
//     state); the counts they report lag ingestion until a Flush.
//   * Destroy (or stop using) every Producer handle before destroying
//     the engine; destroy a handle on its owning thread (or after
//     joining it).
//
// Windowed summaries add a global rotation clock shared by all
// producers: positions in the global stream are claimed with a single
// fetch_add, a bucket's items may only be enqueued once every earlier
// bucket has rotated, and the producer that claims a bucket's first
// position performs the rotation after waiting for the global applied
// count to reach the boundary.  See IngestWindowed below and
// docs/ENGINE.md#windowed-rotation-under-p-producers.
#ifndef L1HH_ENGINE_SHARDED_ENGINE_H_
#define L1HH_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/spsc_ring.h"
#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {

class SlidingWindowSummary;

struct ShardedEngineOptions {
  /// Registry name of the per-shard summary (see RegisteredSummaryNames).
  std::string algorithm = "misra_gries";
  /// Construction parameters handed verbatim to every shard.  The shared
  /// seed is what makes the shard summaries Merge-compatible.
  SummaryOptions summary;
  /// Number of hash partitions (>= 1).  K > 1 requires the algorithm to
  /// support Merge.
  size_t num_shards = 4;
  /// Worker threads draining the shard rings; 0 means one per shard.
  /// Each shard is serviced by exactly one worker (SPSC consumer side).
  size_t num_threads = 0;
  /// Per-ring capacity in items (rounded up to a power of two).  Memory
  /// scales as num_shards * max_producers rings.
  size_t queue_capacity = size_t{1} << 16;
  /// Maximum items a worker applies per UpdateBatch drain.
  size_t drain_batch = 1024;
  /// Total producer slots, INCLUDING slot 0 (the engine's own
  /// Update/UpdateBatch path).  max_producers - 1 handles can be live at
  /// once via RegisterProducer; the default 1 reserves no external slots
  /// and reproduces the legacy single-producer engine exactly.
  size_t max_producers = 1;
};

/// What a checkpoint consumer (the on-disk manifest, or a replica's sync
/// protocol) already holds for one shard: the clocks of the shard state it
/// has, and how many deltas are already chained onto its base snapshot.
/// CaptureFrames compares these against the live clocks to decide, per
/// shard, between no frame (clean), a delta frame, or a full frame.
struct ShardBaseline {
  bool valid = false;      // false: nothing held; always emit a full frame
  uint64_t applied = 0;    // shard items applied at the baseline
  uint64_t rotations = 0;  // shard window rotations at the baseline (0 when
                           // the algorithm is not windowed)
  uint32_t chain = 0;      // deltas already stacked on the baseline's base
};

/// One captured shard state: a full snapshot container ("L1HHSNAP") or a
/// delta container ("L1HHDELT") chained onto the caller's baseline, plus
/// the clocks the bytes advance the shard to.
struct ShardFrame {
  size_t shard = 0;
  bool delta = false;
  uint64_t applied = 0;    // shard items applied after this frame
  uint64_t rotations = 0;  // shard rotations after this frame
  std::vector<uint8_t> bytes;
};

/// Point-in-time telemetry snapshot for ONE engine instance, for in-process
/// callers (the process-wide obs::Registry aggregates across instances; this
/// struct is the per-engine view).  Counter semantics:
///   * items_applied / shard_applied — items drained into shard summaries
///     (== enqueued after a Flush; lags ingestion otherwise).
///   * ring_high_water[k] — max occupancy ever observed on shard k's rings
///     by its owning worker (backpressure headroom diagnostic).
///   * slot_enqueued[p] — items enqueued by producer slot p summed over
///     shards (slot 0 is the engine's own Update path).
///   * rotations — completed lockstep window rotations (0 when not
///     windowed).
struct EngineMetrics {
  uint64_t items_applied = 0;
  uint64_t rotations = 0;
  size_t num_shards = 0;
  size_t num_threads = 0;
  size_t max_producers = 0;
  size_t active_producers = 0;
  std::vector<uint64_t> shard_applied;
  std::vector<uint64_t> ring_high_water;
  std::vector<uint64_t> slot_enqueued;
  std::vector<uint8_t> slot_active;  // 1 = slot live (slot 0 always)
};

class ShardedEngine {
 public:
  /// A claimed producer slot: an independent ingestion endpoint with its
  /// own ring per shard and its own scatter-staging buffers.  Obtain via
  /// RegisterProducer; destroying the handle returns the slot for reuse
  /// (items already enqueued stay enqueued).  One thread per handle.
  class Producer {
   public:
    ~Producer();
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    /// Enqueues `weight` occurrences of `item`; blocks only on
    /// backpressure (this slot's ring for the owning shard full) or, for
    /// windowed engines, on the global rotation gate.
    void Update(uint64_t item, uint64_t weight = 1);

    /// Enqueues a batch, scatter-partitioned to the owning shards.
    void UpdateBatch(std::span<const uint64_t> items);

    /// Columnar ingest: routes the slice with a per-batch partition pass
    /// (tiled shard-id sweep -> counting prefix sum -> scatter into
    /// contiguous per-shard runs, one ring push per shard per tile)
    /// instead of UpdateBatch's per-item staging dispatch.  Same blocking
    /// behavior and windowed-rotation gating as UpdateBatch.
    void UpdateColumn(const uint64_t* items, size_t n);

    /// This handle's slot index in [1, max_producers).
    size_t slot() const { return slot_; }

   private:
    friend class ShardedEngine;
    Producer(ShardedEngine* engine, size_t slot);

    // The non-windowed UpdateColumn body (windowed ingest calls it per
    // rotation chunk): partition one slice and push each shard's run.
    void PartitionPush(const uint64_t* items, size_t n);

    ShardedEngine* engine_;
    size_t slot_;
    // Per-shard scatter buffers, same role as the controller's.
    std::vector<std::vector<uint64_t>> staging_;
    // UpdateColumn partition-pass scratch (tile-sized, slot-local).
    std::vector<uint32_t> part_shards_;
    std::vector<size_t> part_starts_;
    std::vector<size_t> part_cursors_;
    std::vector<uint64_t> part_scratch_;
  };

  /// Validates options, builds the shard summaries, and starts the worker
  /// pool.  Returns nullptr (with the reason in *status when given) if the
  /// algorithm is unregistered, K == 0, max_producers is 0 or implausibly
  /// large, or K > 1 for a non-mergeable structure.
  static std::unique_ptr<ShardedEngine> Create(
      const ShardedEngineOptions& options, Status* status = nullptr);

  /// Stops and joins the workers; pending queued items are drained first.
  /// All Producer handles must have been destroyed (or gone idle forever)
  /// before this runs.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Claims a free producer slot and returns its handle, or nullptr with
  /// FailedPrecondition in *status when all max_producers - 1 slots are
  /// live.  Safe from any thread; slots released by a destroyed handle
  /// are reclaimed (the mutex handing the slot over also orders the old
  /// owner's pushes before the new owner's).
  std::unique_ptr<Producer> RegisterProducer(Status* status = nullptr);

  /// Enqueues `weight` occurrences of `item` on slot 0 (unit-weight
  /// stream semantics, matching Summary::Update).  Blocks only on
  /// backpressure (owning shard's slot-0 ring full).
  void Update(uint64_t item, uint64_t weight = 1);

  /// Enqueues a batch on slot 0, scatter-partitioned to the owning
  /// shards.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Columnar ingest on slot 0: the partition-pass route (see
  /// Producer::UpdateColumn).  Same single-controller-thread contract as
  /// Update/UpdateBatch.
  void UpdateColumn(const uint64_t* items, size_t n);

  /// Blocks until every item enqueued BEFORE the call (summed over all
  /// producer slots with acquire ordering) has been applied to its shard
  /// summary.  Safe from any thread; concurrent producers may keep
  /// enqueueing, their new items are simply not waited for.
  void Flush();

  /// Point query against the merged view.  (Routing to the owning shard
  /// alone would be wrong for the sampling-based structures: a shard
  /// rescales its sample by the configured full-stream length, so its
  /// local estimate is inflated by ~K; the merged summary renormalizes
  /// over the combined sample.)  Flushes; safe from any thread, even
  /// with live producers (snapshot isolation — see contract above).
  double Estimate(uint64_t item);

  /// Point queries for a whole key list under ONE flush/park/rebuild
  /// cycle (an audit pass over k keys costs one pause, not k).  Returns
  /// estimates positionally matching `items`.  Same thread-safety and
  /// snapshot-isolation contract as Estimate.
  std::vector<double> EstimateBatch(const std::vector<uint64_t>& items);

  /// Global report from the merged view.  Flushes; safe from any thread,
  /// even with live producers (snapshot isolation).
  std::vector<ItemEstimate> HeavyHitters(double phi);

  /// The merged summary for the full ingested stream, rebuilt only when
  /// new items have been applied since the last call (merge-epoch cache).
  /// With K == 1 this is the lone shard itself.  Flushes.  LEGACY
  /// contract: controller thread only, no concurrently-active Producer
  /// handles, reference valid until the next non-const engine call.
  const Summary& MergedView();

  /// Total items applied across all shards (== enqueued after Flush).
  uint64_t ItemsProcessed() const;

  /// Shard summaries + rings + cached merge, in bytes.  Flushes and
  /// parks the workers first; safe from any thread.
  size_t MemoryUsageBytes();

  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return workers_.size(); }
  /// Total producer slots including slot 0.
  size_t max_producers() const { return slots_.size(); }
  /// Currently-live external Producer handles (slots 1..P-1 in use).
  size_t active_producers() const;
  const std::string& algorithm() const { return options_.algorithm; }

  // ---- Checkpoint / Restore (docs/SNAPSHOTS.md, docs/ENGINE.md) ---------

  /// Flush-quiesces, parks the workers, then writes a restartable FULL
  /// checkpoint into `dir` (created if missing): one self-describing
  /// snapshot file per shard (src/io/snapshot.h) plus a generation-
  /// numbered MANIFEST.<gen> recording the algorithm, the shard count,
  /// and each shard's clocks and file chain.  Every file goes through
  /// the crash-safe write-tmp/fsync/rename protocol and the manifest is
  /// written last, so a crash at ANY point leaves the previous
  /// generation intact and restorable — never a torn or mixed-epoch
  /// checkpoint.  The newest and previous generations are retained;
  /// older manifests and the files only they referenced are pruned.
  /// Safe from any thread, even with live producers (the checkpoint
  /// captures the flushed prefix).  I/O failures are Status::IOError.
  Status Checkpoint(const std::string& dir);

  /// Incremental checkpoint: like Checkpoint, but reads the newest
  /// complete manifest in `dir` and writes only what changed since it.
  /// A shard whose clocks did not move keeps its existing file chain
  /// verbatim (no bytes written); a dirty windowed shard whose tail
  /// still fits the ring appends one delta container to its chain; a
  /// dirty plain shard — or a chain past kMaxDeltaChain, or a window
  /// that rotated a full ring — falls back to a fresh full snapshot.
  /// The new MANIFEST.<gen> is self-contained: it lists each shard's
  /// complete chain (base + deltas), so Restore never consults older
  /// manifests.  With no prior manifest this IS a full checkpoint.
  /// After touching 1 of K shards the checkpoint writes O(1 shard)
  /// bytes + one manifest (tests/checkpoint_fault_test.cc pins this).
  Status CheckpointDelta(const std::string& dir);

  /// Deltas chained onto one base before CheckpointDelta rewrites the
  /// shard in full: bounds both restore replay length and the growth of
  /// a chain's on-disk footprint.
  static constexpr uint32_t kMaxDeltaChain = 12;

  /// Flush-quiesces, parks the workers, and captures each shard's state
  /// as an in-memory frame against `baselines` (what the consumer
  /// already holds): clean shards emit nothing, dirty windowed shards
  /// within `max_delta_chain` emit a delta container, everything else a
  /// full snapshot container.  Pass an empty vector for a cold consumer
  /// (all full frames).  `*total_applied` gets the global applied count
  /// the frames bring the consumer to.  This is the shared capture step
  /// behind CheckpointDelta and the replication stream in
  /// tools/l1hh_serve.cc.  Safe from any thread.
  Status CaptureFrames(const std::vector<ShardBaseline>& baselines,
                       uint32_t max_delta_chain,
                       std::vector<ShardFrame>* frames,
                       uint64_t* total_applied);

  /// Rebuilds an engine from a Checkpoint directory and resumes ingestion
  /// exactly where it left off: same algorithm, same per-shard options and
  /// seed (read from the shard snapshot headers), same shard count, and
  /// per-shard summaries restored bit-exactly — continuing the run is
  /// indistinguishable from never having stopped.  Generations are tried
  /// newest-first: if the newest manifest or any file it references is
  /// missing, truncated, or corrupt, Restore falls back to the previous
  /// complete generation, so a crash mid-checkpoint (or a stale manifest
  /// over a lost delta) costs at most one checkpoint of progress, never
  /// the directory.  `exec` supplies only the execution knobs
  /// (num_threads, queue_capacity, drain_batch, max_producers); its
  /// algorithm/summary/num_shards fields are ignored in favor of the
  /// checkpoint's.  Returns nullptr with the reason in *status when no
  /// generation is restorable.
  static std::unique_ptr<ShardedEngine> Restore(
      const std::string& dir, const ShardedEngineOptions& exec,
      Status* status = nullptr);
  static std::unique_ptr<ShardedEngine> Restore(const std::string& dir,
                                                Status* status = nullptr);

  /// The owning shard of an item — stable for the engine's lifetime.
  size_t ShardOf(uint64_t item) const;

  /// True when the per-shard summaries are `windowed:<algo>` containers.
  /// Windowed operation changes one thing about ingestion: bucket
  /// rotation is driven by the GLOBAL stream position, not each shard's
  /// local count — producers claim position ranges off one atomic clock,
  /// split them at global bucket boundaries, and the claimant of a
  /// boundary position rotates all K shard rings together once the
  /// global applied count reaches the boundary, so bucket i covers the
  /// same global position range on every shard and the rings stay
  /// bucket-wise mergeable (docs/WINDOWS.md#sharded-windows).
  bool windowed() const { return !windows_.empty(); }

  /// Items applied per shard (exact after Flush); the balance diagnostic
  /// surfaced by the CLI and the throughput bench.
  std::vector<uint64_t> ShardItemCounts() const;

  /// Telemetry snapshot for THIS engine (see EngineMetrics).  Safe from
  /// any thread at any time: every field is read from atomics or
  /// mutex-guarded slot flags; values lag ingestion until a Flush.
  EngineMetrics Metrics() const;

  /// Publishes the per-shard and per-slot gauges from Metrics() into the
  /// process-wide obs::Registry (labels shard="k" / slot="p").  Called at
  /// scrape time by the serve front end and the CLI — gauges are
  /// point-in-time, so there is no need to maintain them on the hot path.
  void PublishMetrics() const;

 private:
  // A cache line per counter: the per-(slot, shard) enqueued counters
  // are written by different producer threads and must not false-share.
  struct alignas(64) PaddedCounter {
    std::atomic<uint64_t> value{0};
  };

  // Each shard owns one ring PER PRODUCER SLOT (rings[p] is slot p's),
  // its summary, and the applied item count.  `applied` is published
  // with release order after every drain, so a thread that observes
  // applied == sum(enqueued) also observes the summary mutations behind
  // it.  The matching enqueued counts live in ProducerSlot, one per
  // shard, so each is written by exactly one producer thread.
  struct Shard {
    Shard(size_t producer_slots, size_t ring_capacity);
    std::vector<std::unique_ptr<SpscRing<uint64_t>>> rings;
    std::unique_ptr<Summary> summary;
    alignas(64) std::atomic<uint64_t> applied{0};
    // Max ring occupancy ever observed by the owning worker (single
    // writer: plain load/compare/store-relaxed, no RMW needed).
    alignas(64) std::atomic<uint64_t> ring_high_water{0};
  };

  // One producer slot: the live flag (guarded by producers_mutex_) and
  // the per-shard enqueued counters this slot's owner publishes.
  struct ProducerSlot {
    explicit ProducerSlot(size_t num_shards) : enqueued(num_shards) {}
    bool active = false;
    std::vector<PaddedCounter> enqueued;
  };

  explicit ShardedEngine(const ShardedEngineOptions& options);

  void StartWorkers();
  void WorkerLoop(size_t first_shard, size_t last_shard);
  // Parks this worker until pause_ clears (or stop_); workers check the
  // flag once per drain pass, so a pause request completes in at most
  // one drain_batch per ring.
  void WorkerPark();
  // Waits for every worker to park (call with state_mutex_ held, after
  // Flush).  While paused the shard summaries are safe to read/write
  // from the pausing thread.
  void PauseWorkers();
  void ResumeWorkers();
  // Blocks until all n items are enqueued on `shard`'s ring for `slot`.
  void PushBlocking(size_t slot, size_t shard_index, const uint64_t* data,
                    size_t n);
  void FlushStaging(size_t slot, std::vector<std::vector<uint64_t>>& staging);
  // The pre-windowing UpdateBatch body: scatter-partition to the slot's
  // staging buffers and bulk-push.
  void ScatterPush(size_t slot, std::vector<std::vector<uint64_t>>& staging,
                   std::span<const uint64_t> items);
  // Releases a slot claimed by RegisterProducer (Producer destructor).
  void ReleaseProducer(size_t slot);
  // Sum of every slot's enqueued counter for one shard / for all shards,
  // acquire-ordered (the Flush targets).
  uint64_t ShardEnqueued(size_t shard_index) const;
  uint64_t TotalApplied() const;
  // Captures the per-shard SlidingWindowSummary pointers (or clears them
  // for a plain algorithm) and switches the windows to external rotation;
  // `restored_rotations` seeds the global rotation clock after Restore.
  void BindWindows(uint64_t restored_rotations);
  // The claimant of bucket `bucket`'s first position waits for bucket-1
  // to have rotated and for the global applied count to reach the
  // boundary, then rotates every shard window under state_mutex_ and
  // release-publishes rotations_done_.
  void RotateAtBoundary(uint64_t bucket);
  // The windowed ingestion protocol, shared by every producer slot:
  // claims `total` positions off the global clock in one fetch_add,
  // splits them at global bucket boundaries, gates each chunk on its
  // bucket's rotation having fired, and performs the rotations this
  // claim owns (boundary positions).  `push(offset, count)` enqueues the
  // next chunk.  Templated so the per-item Update path pays no closure
  // allocation (defined in the .cc; all instantiations live there).
  template <typename PushFn>
  void IngestWindowed(uint64_t total, PushFn&& push);
  // Rebuilds the merge cache if stale and returns the current view.
  // Requires state_mutex_ held AND workers parked (it reads the shard
  // summaries).
  const Summary& RebuildMergedLocked();
  // CaptureFrames body; requires state_mutex_ held and workers parked.
  Status CaptureFramesLocked(const std::vector<ShardBaseline>& baselines,
                             uint32_t max_delta_chain,
                             std::vector<ShardFrame>* frames,
                             uint64_t* total_applied);
  // Shared Checkpoint / CheckpointDelta body: capture frames against the
  // newest on-disk manifest (when `incremental`), write the changed
  // files, seal the new generation with its manifest, prune old ones.
  Status WriteCheckpoint(const std::string& dir, bool incremental);
  // One restore attempt against generation `generation` of `dir`; Restore
  // walks generations newest-first until one succeeds.
  static std::unique_ptr<ShardedEngine> RestoreGeneration(
      const std::string& dir, uint64_t generation,
      const ShardedEngineOptions& exec, Status* status);

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ProducerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};

  // Slot 0's handle: the engine's own Update/UpdateBatch delegate to it.
  std::unique_ptr<Producer> controller_;

  // Slot claim/release (RegisterProducer / ~Producer).
  mutable std::mutex producers_mutex_;

  // Serializes the read side (queries, checkpoint, rotation): exactly
  // one thread at a time may pause the workers and touch shard
  // summaries or the merge cache.
  std::mutex state_mutex_;

  // Worker pause gate: pause_ is checked once per drain pass; parked
  // workers wait on resume_cv_, the pausing thread waits on park_cv_
  // until parked_workers_ == workers_.size().
  std::atomic<bool> pause_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::condition_variable resume_cv_;
  size_t parked_workers_ = 0;

  // Merge-epoch cache (guarded by state_mutex_): `merged_` answers for
  // the first `merged_epoch_` applied items at rotation count
  // `merged_rotations_` and is rebuilt only when either moves.
  std::unique_ptr<Summary> merged_;
  uint64_t merged_epoch_ = 0;
  uint64_t merged_rotations_ = 0;
  bool merged_valid_ = false;

  // Windowed operation: the shard windows in external-rotation mode
  // (mutated only under state_mutex_), the global bucket width, the
  // atomic position clock producers claim ranges from, and the count of
  // completed lockstep rotations (release-published by the rotating
  // claimant, acquire-read by gated producers).
  std::vector<SlidingWindowSummary*> windows_;
  uint64_t rotation_stride_ = 0;
  alignas(64) std::atomic<uint64_t> global_pos_{0};
  alignas(64) std::atomic<uint64_t> rotations_done_{0};
};

}  // namespace l1hh

#endif  // L1HH_ENGINE_SHARDED_ENGINE_H_
