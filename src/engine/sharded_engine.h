// ShardedEngine — the scale-out layer over the unified Summary interface.
// Architecture walkthrough: docs/ENGINE.md.
//
// The paper's structures are mergeable (Misra-Gries and Space-Saving by
// the classic merge, the linear sketches cell-wise, BdwSimple by sample
// concatenation, BdwOptimal by epoch-reconciled table sums), which is
// exactly the property Woodruff's survey singles out as the route to
// distributed and parallel deployment.  The engine exploits it: the item
// universe is hash-partitioned across K shards, each shard owns an
// independent instance of one factory-registered Summary (same name,
// same options, same seed — the Merge compatibility precondition), and
// every shard is fed through a lock-free SPSC ring buffer drained in
// batches by a pool of worker threads.  Global answers come from merging
// the shard summaries on demand behind a merge-epoch cache, so repeated
// queries over an unchanged stream pay for one merge.
//
// Because shards see disjoint substreams (every occurrence of an item
// lands on the same shard), the merged summary answers for the
// concatenated stream exactly as a single summary would — within each
// structure's documented merge error (see docs/ALGORITHMS.md's
// mergeability table).  This includes the paper's space-optimal
// Algorithm 2 (`bdw_optimal`), whose accelerated-counter epochs follow a
// schedule shared by all shards and are reconciled at merge time
// (core/bdw_optimal.h).  Structures that do not support Merge
// (lossy_counting, sticky_sampling) are refused at construction for
// K > 1 rather than silently answering wrong; K == 1 degenerates to a
// single-summary engine (still useful for moving ingestion off the
// caller's thread).
//
// ---- Thread-safety contract (what tests/sharded_engine_test.cc and the
// CI TSan job enforce) -------------------------------------------------
//
//   * Exactly ONE controller thread may call Update / UpdateBatch /
//     Flush / Estimate / HeavyHitters / MergedView / MemoryUsageBytes.
//     These are the SPSC producer side of every shard ring plus the
//     owner of the scatter-staging buffers and the merge cache; a second
//     caller thread is a data race, not just a semantic error.
//   * The engine's internal workers are the only ring consumers, and
//     each shard is owned by exactly one worker.
//   * Query methods flush first — they block until every enqueued item
//     has been applied (release/acquire on per-shard enqueued/applied
//     counters) — so results always reflect the full ingested prefix,
//     and shard summaries are only read while the workers are quiescent.
//   * ItemsProcessed / ShardItemCounts / ShardOf and the plain getters
//     are safe from any thread at any time (atomic reads or immutable
//     state); the counts they report lag ingestion until a Flush.
//   * The reference returned by MergedView is valid until the next
//     non-const engine call, and must only be used on the controller
//     thread.
#ifndef L1HH_ENGINE_SHARDED_ENGINE_H_
#define L1HH_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/spsc_ring.h"
#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {

class SlidingWindowSummary;

struct ShardedEngineOptions {
  /// Registry name of the per-shard summary (see RegisteredSummaryNames).
  std::string algorithm = "misra_gries";
  /// Construction parameters handed verbatim to every shard.  The shared
  /// seed is what makes the shard summaries Merge-compatible.
  SummaryOptions summary;
  /// Number of hash partitions (>= 1).  K > 1 requires the algorithm to
  /// support Merge.
  size_t num_shards = 4;
  /// Worker threads draining the shard rings; 0 means one per shard.
  /// Each shard is serviced by exactly one worker (SPSC consumer side).
  size_t num_threads = 0;
  /// Per-shard ring capacity in items (rounded up to a power of two).
  size_t queue_capacity = size_t{1} << 16;
  /// Maximum items a worker applies per UpdateBatch drain.
  size_t drain_batch = 1024;
};

class ShardedEngine {
 public:
  /// Validates options, builds the shard summaries, and starts the worker
  /// pool.  Returns nullptr (with the reason in *status when given) if the
  /// algorithm is unregistered, K == 0, or K > 1 for a non-mergeable
  /// structure.
  static std::unique_ptr<ShardedEngine> Create(
      const ShardedEngineOptions& options, Status* status = nullptr);

  /// Stops and joins the workers; pending queued items are drained first.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Enqueues `weight` occurrences of `item` (unit-weight stream
  /// semantics, matching Summary::Update).  Blocks only on backpressure
  /// (owning shard's ring full).
  void Update(uint64_t item, uint64_t weight = 1);

  /// Enqueues a batch, scatter-partitioned to the owning shards.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Blocks until every item enqueued so far has been applied to its
  /// shard summary.  Afterwards the shard summaries are quiescent and
  /// safe to read from the controller thread.
  void Flush();

  /// Point query against the merged view.  (Routing to the owning shard
  /// alone would be wrong for the sampling-based structures: a shard
  /// rescales its sample by the configured full-stream length, so its
  /// local estimate is inflated by ~K; the merged summary renormalizes
  /// over the combined sample.)  Flushes.
  double Estimate(uint64_t item);

  /// Global report from the merged view.  Flushes.
  std::vector<ItemEstimate> HeavyHitters(double phi);

  /// The merged summary for the full ingested stream, rebuilt only when
  /// new items have been applied since the last call (merge-epoch cache).
  /// With K == 1 this is the lone shard itself.  Flushes; the reference
  /// stays valid until the next non-const engine call.
  const Summary& MergedView();

  /// Total items applied across all shards (== enqueued after Flush).
  uint64_t ItemsProcessed() const;

  /// Shard summaries + rings + cached merge, in bytes.  Flushes first:
  /// the shard summaries can only be read while the drain threads are
  /// quiescent.
  size_t MemoryUsageBytes();

  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return workers_.size(); }
  const std::string& algorithm() const { return options_.algorithm; }

  // ---- Checkpoint / Restore (docs/SNAPSHOTS.md, docs/ENGINE.md) ---------

  /// Flush-quiesces, then writes a restartable checkpoint into `dir`
  /// (created if missing): one self-describing snapshot file per shard
  /// (src/io/snapshot.h) plus a MANIFEST recording the algorithm, the
  /// shard count, and the shard file names.  The manifest is written
  /// last, so a directory with a MANIFEST is a complete checkpoint.
  /// Controller thread only; overwrites any previous checkpoint in `dir`.
  Status Checkpoint(const std::string& dir);

  /// Rebuilds an engine from a Checkpoint directory and resumes ingestion
  /// exactly where it left off: same algorithm, same per-shard options and
  /// seed (read from the shard snapshot headers), same shard count, and
  /// per-shard summaries restored bit-exactly — continuing the run is
  /// indistinguishable from never having stopped.  `exec` supplies only
  /// the execution knobs (num_threads, queue_capacity, drain_batch); its
  /// algorithm/summary/num_shards fields are ignored in favor of the
  /// checkpoint's.  Returns nullptr with the reason in *status on any
  /// corrupt or inconsistent checkpoint.
  static std::unique_ptr<ShardedEngine> Restore(
      const std::string& dir, const ShardedEngineOptions& exec,
      Status* status = nullptr);
  static std::unique_ptr<ShardedEngine> Restore(const std::string& dir,
                                                Status* status = nullptr);

  /// The owning shard of an item — stable for the engine's lifetime.
  size_t ShardOf(uint64_t item) const;

  /// True when the per-shard summaries are `windowed:<algo>` containers.
  /// Windowed operation changes one thing about ingestion: bucket
  /// rotation is driven by the GLOBAL enqueued count, not each shard's
  /// local count — the controller splits every batch at global bucket
  /// boundaries, flush-quiesces at each one, and rotates all K shard
  /// rings together, so bucket i covers the same global time range on
  /// every shard and the rings stay bucket-wise mergeable
  /// (docs/WINDOWS.md#sharded-windows).
  bool windowed() const { return !windows_.empty(); }

  /// Items applied per shard (exact after Flush); the balance diagnostic
  /// surfaced by the CLI and the throughput bench.
  std::vector<uint64_t> ShardItemCounts() const;

 private:
  // Each shard owns its ring, its summary, and the enqueued/applied item
  // counts whose equality defines quiescence.  `applied` is published
  // with release order after every drain, so a controller that observes
  // applied == enqueued also observes the summary mutations behind it.
  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<uint64_t> ring;
    std::unique_ptr<Summary> summary;
    alignas(64) std::atomic<uint64_t> enqueued{0};
    alignas(64) std::atomic<uint64_t> applied{0};
  };

  explicit ShardedEngine(const ShardedEngineOptions& options);

  void StartWorkers();
  void WorkerLoop(size_t first_shard, size_t last_shard);
  // Blocks until all of `item` x weight is enqueued on shard `s`.
  void PushBlocking(Shard& shard, const uint64_t* data, size_t n);
  void FlushStaging();
  // The pre-windowing UpdateBatch body: scatter-partition to the shard
  // staging buffers and bulk-push.
  void ScatterPush(std::span<const uint64_t> items);
  // Captures the per-shard SlidingWindowSummary pointers (or clears them
  // for a plain algorithm) and switches the windows to external rotation;
  // `restored_rotations` seeds the global rotation clock after Restore.
  void BindWindows(uint64_t restored_rotations);
  // Flush-quiesces and rotates every shard ring together (controller
  // thread, global bucket boundary).
  void RotateAllShards();
  // The windowed ingestion protocol, shared by Update and UpdateBatch:
  // splits `total` incoming items at global bucket boundaries, rotating
  // lazily (on the first item PAST a boundary) and advancing the global
  // clock; `push(offset, count)` enqueues the next chunk.  Templated so
  // the per-item Update path pays no closure allocation (defined in the
  // .cc; both instantiations live there).
  template <typename PushFn>
  void IngestWindowed(uint64_t total, PushFn&& push);

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};

  // Controller-thread scatter buffers: UpdateBatch stages items per shard
  // and bulk-pushes, amortizing the ring's atomic traffic.
  std::vector<std::vector<uint64_t>> staging_;

  // Merge-epoch cache: `merged_` answers for the first `merged_epoch_`
  // applied items and is rebuilt only when the epoch moves (or a window
  // rotation changes state without moving it).
  std::unique_ptr<Summary> merged_;
  uint64_t merged_epoch_ = 0;
  bool merged_valid_ = false;

  // Windowed operation (controller-thread state): the shard windows in
  // external-rotation mode, the global bucket width, and the global
  // enqueued position at which the next lockstep rotation fires.
  std::vector<SlidingWindowSummary*> windows_;
  uint64_t rotation_stride_ = 0;
  uint64_t global_enqueued_ = 0;
  uint64_t next_rotation_at_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_ENGINE_SHARDED_ENGINE_H_
