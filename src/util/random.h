// Deterministic pseudo-random source for the whole library.
//
// xoshiro256** seeded through SplitMix64.  Every algorithm in the library
// takes an explicit seed so that tests and benchmarks are reproducible.
// The generator counts the number of raw 64-bit words drawn: the paper's
// model charges for randomness (Lemma 1 / Proposition 2 argue about the
// number of random bits an algorithm may consume), and the sampler tests
// rely on this accounting.
#ifndef L1HH_UTIL_RANDOM_H_
#define L1HH_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace l1hh {

class BitWriter;
class BitReader;

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Next raw 64 bits.
  uint64_t NextU64() {
    ++words_drawn_;
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound >= 1.  Unbiased (rejection sampling).
  uint64_t UniformU64(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Bernoulli(2^{-k}): true iff k fresh random bits are all zero.  This is
  /// exactly the coin of the paper's Lemma 1.  O(k/64) time, k >= 0.
  bool AllZeroBits(int k) {
    while (k >= 64) {
      if (NextU64() != 0) {
        // Still consume conceptually independent bits; early exit is fine
        // because remaining bits cannot change the outcome.
        return false;
      }
      k -= 64;
    }
    if (k == 0) return true;
    return (NextU64() >> (64 - k)) == 0;
  }

  /// Number of failures before the first success of Bernoulli(p), p in (0,1].
  /// Inverse-transform sampling; O(1) time.
  uint64_t Geometric(double p) {
    if (p >= 1.0) return 0;
    const double u = 1.0 - UniformDouble();  // u in (0, 1]
    const double g = std::floor(std::log(u) / std::log1p(-p));
    if (g < 0) return 0;
    if (g > 9.0e18) return static_cast<uint64_t>(9.0e18);
    return static_cast<uint64_t>(g);
  }

  /// Total raw 64-bit words drawn since construction/seeding.
  uint64_t words_drawn() const { return words_drawn_; }
  uint64_t bits_drawn() const { return words_drawn_ * 64; }

  // ---- Snapshot support -------------------------------------------------
  // A checkpointed structure that owns an Rng must persist the generator
  // state, not just the seed: a restored instance then continues the exact
  // random sequence of the saved one, so checkpoint -> restore -> continue
  // is bit-identical to an uninterrupted run (tests/snapshot_roundtrip_test).

  static constexpr int kStateWords = 5;  // state_[4] + words_drawn_

  void SaveState(uint64_t out[kStateWords]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
    out[4] = words_drawn_;
  }

  void RestoreState(const uint64_t in[kStateWords]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
    words_drawn_ = in[4];
  }

  /// The bit-stream form of SaveState/RestoreState (kStateWords u64s).
  /// Deserialize leaves the generator untouched on a truncated stream.
  void Serialize(BitWriter& out) const;
  void Deserialize(BitReader& in);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  uint64_t words_drawn_ = 0;
};

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
/// Inline so per-item hash sweeps (engine shard routing, the grouped
/// table's probe sequence) pipeline the mix instead of paying a call.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot mix of a 64-bit value (stateless fingerprint).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

}  // namespace l1hh

#endif  // L1HH_UTIL_RANDOM_H_
