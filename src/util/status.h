// Minimal Status/Result types for error handling on non-hot paths
// (configuration validation, deserialization).  Hot paths (Insert) never
// allocate or branch on Status.
#ifndef L1HH_UTIL_STATUS_H_
#define L1HH_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace l1hh {

class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName() + ": " + message_;
  }

 private:
  enum class Code { kOk, kInvalidArgument, kCorruption, kFailedPrecondition };

  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  std::string CodeName() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kCorruption:
        return "Corruption";
      case Code::kFailedPrecondition:
        return "FailedPrecondition";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace l1hh

#endif  // L1HH_UTIL_STATUS_H_
