// Minimal Status/Result types for error handling on non-hot paths
// (configuration validation, deserialization).  Hot paths (Insert) never
// allocate or branch on Status.
#ifndef L1HH_UTIL_STATUS_H_
#define L1HH_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace l1hh {

class Status {
 public:
  // kIOError is the environment's fault (disk full, permission, ENOSPC),
  // as opposed to kInvalidArgument (the caller's) or kCorruption (the
  // input bytes'); callers retry or surface I/O errors differently, so
  // the checkpoint path must not blur them together.
  enum class Code {
    kOk,
    kInvalidArgument,
    kCorruption,
    kFailedPrecondition,
    kIOError,
  };

  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == Code::kIOError; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName() + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  std::string CodeName() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kCorruption:
        return "Corruption";
      case Code::kFailedPrecondition:
        return "FailedPrecondition";
      case Code::kIOError:
        return "IOError";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace l1hh

#endif  // L1HH_UTIL_STATUS_H_
