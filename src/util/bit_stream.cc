#include "util/bit_stream.h"

#include <bit>
#include <cstring>
#include <string>

namespace l1hh {

void BitWriter::WriteBits(uint64_t value, int nbits) {
  if (nbits == 0) return;
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  const size_t word_index = nbits_ >> 6;
  const int bit_offset = static_cast<int>(nbits_ & 63);
  if (word_index >= words_.size()) words_.push_back(0);
  words_[word_index] |= value << bit_offset;
  const int spill = bit_offset + nbits - 64;
  if (spill > 0) {
    words_.push_back(value >> (nbits - spill));
  }
  nbits_ += static_cast<size_t>(nbits);
}

void BitWriter::WriteGamma(uint64_t v) {
  // v >= 1: floor(log2 v) zeros, then v's bits from MSB.
  const int len = FloorLog2(v);
  WriteBits(0, len);
  WriteBits(1, 1);
  // Low `len` bits of v (below the leading one), LSB-first is fine as long
  // as the reader agrees.
  WriteBits(v - (uint64_t{1} << len), len);
}

void BitWriter::WriteDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  WriteU64(bits);
}

uint64_t BitReader::ReadBits(int nbits) {
  if (nbits == 0) return 0;
  if (pos_ + static_cast<size_t>(nbits) > limit_bits_) {
    MarkOverflow();
    pos_ = limit_bits_;
    return 0;
  }
  const size_t word_index = pos_ >> 6;
  const int bit_offset = static_cast<int>(pos_ & 63);
  uint64_t value = words_[word_index] >> bit_offset;
  const int taken = 64 - bit_offset;
  if (taken < nbits) {
    value |= words_[word_index + 1] << taken;
  }
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  pos_ += static_cast<size_t>(nbits);
  return value;
}

uint64_t BitReader::ReadGamma() {
  int len = 0;
  while (!overflow_ && ReadBits(1) == 0) {
    ++len;
    // A valid gamma prefix is at most 63 zeros (64-bit values); 64 would
    // shift past the word below, which is UB on hostile input.
    if (len >= 64) {
      MarkOverflow();
      return 1;
    }
  }
  if (overflow_) return 1;
  const uint64_t low = ReadBits(len);
  return (uint64_t{1} << len) + low;
}

double BitReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Status BitReader::status() const {
  if (!overflow_) return Status::Ok();
  return Status::Corruption(
      "bit stream overflow: read past the end at bit " +
      std::to_string(overflow_pos_) + " of " + std::to_string(limit_bits_));
}

}  // namespace l1hh
