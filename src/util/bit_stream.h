// Bit-exact serialization streams.
//
// The communication games of Section 4 measure Alice's message in bits: a
// sketch Serialize()s itself into a BitWriter and the message size is the
// exact number of bits written.  Every sketch in this library round-trips
// through these streams, and the snapshot subsystem (src/io/) persists the
// same bit streams to disk behind a self-describing container.
#ifndef L1HH_UTIL_BIT_STREAM_H_
#define L1HH_UTIL_BIT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bit_util.h"
#include "util/status.h"

namespace l1hh {

class BitWriter {
 public:
  /// Appends the low `nbits` bits of `value` (LSB first). nbits in [0, 64].
  void WriteBits(uint64_t value, int nbits);

  /// Elias gamma code for v >= 1.
  void WriteGamma(uint64_t v);

  /// Gamma code shifted to cover v >= 0.
  void WriteCounter(uint64_t v) { WriteGamma(v + 1); }

  void WriteU64(uint64_t v) { WriteBits(v, 64); }
  void WriteU32(uint32_t v) { WriteBits(v, 32); }
  void WriteBool(bool b) { WriteBits(b ? 1 : 0, 1); }

  /// Fixed-width write of a double (bit pattern).
  void WriteDouble(double d);

  size_t size_bits() const { return nbits_; }
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  size_t nbits_ = 0;
};

class BitReader {
 public:
  /// The writer must not be written to while this reader is live: the
  /// reader borrows the writer's word buffer, and a write that grows it
  /// may reallocate out from under the reader.
  explicit BitReader(const BitWriter& writer)
      : words_(writer.words().data()), limit_bits_(writer.size_bits()) {}

  /// Reads an external word buffer (e.g. a snapshot file unpacked into
  /// little-endian u64 words).  `limit_bits` must be covered by the
  /// buffer; an inconsistent caller value is clamped so no read can go
  /// past `word_count * 64` bits.
  BitReader(const uint64_t* words, size_t word_count, size_t limit_bits)
      : words_(words),
        limit_bits_(limit_bits > word_count * 64 ? word_count * 64
                                                 : limit_bits) {}

  /// Reads `nbits` bits (LSB first).  Reading past the end returns zeros and
  /// sets overflow(); the first out-of-bounds position is kept for status().
  uint64_t ReadBits(int nbits);

  uint64_t ReadGamma();
  uint64_t ReadCounter() { return ReadGamma() - 1; }
  uint64_t ReadU64() { return ReadBits(64); }
  uint32_t ReadU32() { return static_cast<uint32_t>(ReadBits(32)); }
  bool ReadBool() { return ReadBits(1) != 0; }
  double ReadDouble();

  size_t position_bits() const { return pos_; }
  size_t remaining_bits() const { return limit_bits_ - pos_; }
  bool overflow() const { return overflow_; }

  /// Bit position of the first out-of-bounds read (only meaningful when
  /// overflow() is true).
  size_t overflow_position() const { return overflow_pos_; }

  /// Ok while every read stayed in bounds; otherwise a Corruption status
  /// naming the first offending bit position — the error a deserializer
  /// should propagate instead of trusting zero-filled reads.
  Status status() const;

  /// Sanity bound for a count field about to drive an allocation: a
  /// well-formed message cannot contain more elements than it has bits.
  /// Returns `count` if plausible, else marks overflow and returns 0.
  uint64_t CheckedCount(uint64_t count) {
    if (count > remaining_bits() + 64) {
      MarkOverflow();
      return 0;
    }
    return count;
  }

 private:
  void MarkOverflow() {
    if (!overflow_) overflow_pos_ = pos_;
    overflow_ = true;
  }

  const uint64_t* words_;
  size_t limit_bits_;
  size_t pos_ = 0;
  size_t overflow_pos_ = 0;
  bool overflow_ = false;
};

}  // namespace l1hh

#endif  // L1HH_UTIL_BIT_STREAM_H_
