#include "util/random.h"

#include "util/bit_stream.h"

namespace l1hh {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
  // Avoid the all-zero state, which is a fixed point of xoshiro256**.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
  words_drawn_ = 0;
}

void Rng::Serialize(BitWriter& out) const {
  uint64_t state[kStateWords];
  SaveState(state);
  for (const uint64_t w : state) out.WriteU64(w);
}

void Rng::Deserialize(BitReader& in) {
  uint64_t state[kStateWords];
  for (auto& w : state) w = in.ReadU64();
  if (!in.overflow()) RestoreState(state);
}

}  // namespace l1hh
