#include "util/random.h"

#include "util/bit_stream.h"

namespace l1hh {

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
  // Avoid the all-zero state, which is a fixed point of xoshiro256**.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
  words_drawn_ = 0;
}

void Rng::Serialize(BitWriter& out) const {
  uint64_t state[kStateWords];
  SaveState(state);
  for (const uint64_t w : state) out.WriteU64(w);
}

void Rng::Deserialize(BitReader& in) {
  uint64_t state[kStateWords];
  for (auto& w : state) w = in.ReadU64();
  if (!in.overflow()) RestoreState(state);
}

}  // namespace l1hh
