// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// trailer of the snapshot container (src/io/snapshot.h).  Header-only and
// dependency-free on purpose: snapshots must be checkable by anything that
// can read bytes, and the checksum has to catch the truncations and bit
// flips the corruption tests inject before a payload reaches Deserialize.
#ifndef L1HH_UTIL_CRC32_H_
#define L1HH_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace l1hh {

namespace internal {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// Continues a CRC computation: pass the previous return value as `crc` to
/// checksum data arriving in chunks; start from 0.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto& table = internal::Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte range.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace l1hh

#endif  // L1HH_UTIL_CRC32_H_
