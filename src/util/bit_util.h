// Bit-manipulation helpers used throughout the library.
//
// The paper (Bhattacharyya–Dey–Woodruff, PODS'16) works in the unit-cost RAM
// model with O(log n)-bit words and repeatedly rounds sampling probabilities
// to powers of two (footnote 3); the helpers here implement that arithmetic.
#ifndef L1HH_UTIL_BIT_UTIL_H_
#define L1HH_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace l1hh {

/// Number of bits needed to represent `v` (0 needs 1 bit by convention).
constexpr int BitWidth(uint64_t v) { return v == 0 ? 1 : std::bit_width(v); }

/// floor(log2(v)); requires v >= 1.
constexpr int FloorLog2(uint64_t v) { return std::bit_width(v) - 1; }

/// ceil(log2(v)); requires v >= 1. CeilLog2(1) == 0.
constexpr int CeilLog2(uint64_t v) {
  return v <= 1 ? 0 : std::bit_width(v - 1);
}

constexpr bool IsPowerOfTwo(uint64_t v) { return std::has_single_bit(v); }

/// Largest power of two <= v; requires v >= 1.
constexpr uint64_t RoundDownPowerOfTwo(uint64_t v) {
  return std::bit_floor(v);
}

/// Smallest power of two >= v; requires v >= 1.
constexpr uint64_t RoundUpPowerOfTwo(uint64_t v) { return std::bit_ceil(v); }

/// Rounds a probability p in (0, 1] DOWN to the nearest power of two,
/// i.e. returns the largest 2^{-k} <= p, as the exponent k >= 0.
/// This is the paper's footnote-3 convention: "we replace p with p' where
/// 1/p' is the largest power of two less than 1/p" (so p' <= p < 2 p').
constexpr int ProbabilityToPow2Exponent(double p) {
  int k = 0;
  double threshold = 1.0;
  // Find the smallest k with 2^{-k} <= p.  p > 0 guarantees termination for
  // any representable double (k <= 1075).
  while (threshold > p) {
    threshold *= 0.5;
    ++k;
  }
  return k;
}

/// Space, in bits, of the Elias gamma code for v >= 1 (2*floor(log2 v) + 1).
/// We use this as the "information-theoretic" cost of storing a variable
/// length counter, matching the paper's O(log C)-bits-per-counter accounting
/// ([BB08] variable-length arrays, paper Section 2.3).
constexpr int EliasGammaBits(uint64_t v) { return 2 * FloorLog2(v) + 1; }

/// Gamma cost of a counter holding value v >= 0 (we code v + 1).
constexpr int CounterBits(uint64_t v) { return EliasGammaBits(v + 1); }

}  // namespace l1hh

#endif  // L1HH_UTIL_BIT_UTIL_H_
