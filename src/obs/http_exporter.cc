#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace l1hh {
namespace obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void WriteResponse(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusText(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  head += resp.body;
  size_t written = 0;
  while (written < head.size()) {
    const ssize_t n = write(fd, head.data() + written, head.size() - written);
    if (n <= 0) return;  // peer gone; nothing to salvage
    written += static_cast<size_t>(n);
  }
  static Counter* const c200 =
      GetCounter("l1hh_http_requests_total", "code=\"200\"");
  static Counter* const c400 =
      GetCounter("l1hh_http_requests_total", "code=\"400\"");
  static Counter* const c404 =
      GetCounter("l1hh_http_requests_total", "code=\"404\"");
  static Counter* const c405 =
      GetCounter("l1hh_http_requests_total", "code=\"405\"");
  static Counter* const c503 =
      GetCounter("l1hh_http_requests_total", "code=\"503\"");
  switch (resp.status) {
    case 200:
      c200->Inc();
      break;
    case 400:
      c400->Inc();
      break;
    case 404:
      c404->Inc();
      break;
    case 405:
      c405->Inc();
      break;
    case 503:
      c503->Inc();
      break;
    default:
      break;
  }
}

}  // namespace

std::unique_ptr<HttpExporter> HttpExporter::Create(
    const HttpExporterOptions& options,
    std::map<std::string, Handler> handlers, Status* status) {
  Status local = Status::Ok();
  Status* out = status != nullptr ? status : &local;

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *out = Status::IOError("http: socket() failed: " +
                           std::string(std::strerror(errno)));
    return nullptr;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    *out = Status::InvalidArgument("http: bad bind address '" +
                                   options.bind_address + "'");
    return nullptr;
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    *out = Status::IOError("http: bind to " + options.bind_address + ":" +
                           std::to_string(options.port) +
                           " failed: " + std::string(std::strerror(errno)));
    return nullptr;
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    *out = Status::IOError("http: listen() failed: " +
                           std::string(std::strerror(errno)));
    return nullptr;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t port = options.port;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port = ntohs(bound.sin_port);
  }
  *out = Status::Ok();
  return std::unique_ptr<HttpExporter>(
      new HttpExporter(options, std::move(handlers), fd, port));
}

HttpExporter::HttpExporter(const HttpExporterOptions& options,
                           std::map<std::string, Handler> handlers,
                           int listen_fd, uint16_t port)
    : options_(options),
      handlers_(std::move(handlers)),
      listen_fd_(listen_fd),
      port_(port) {
  thread_ = std::thread([this] { ServeLoop(); });
}

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // shutdown() wakes the blocked accept(); the loop then sees the error
  // and exits, after which the fd is safe to close.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::ServeLoop() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or irrecoverably broken)
    }
    HandleConnection(fd);
    close(fd);
  }
}

void HttpExporter::HandleConnection(int fd) {
  timeval tv;
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head, a hard byte cap, a timeout,
  // or EOF. The body (there should be none on a GET) is ignored.
  std::string request;
  char buf[1024];
  bool complete = false;
  while (request.size() < options_.max_request_bytes) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // timeout, reset, or torn request: drop it
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    if (request.size() >= options_.max_request_bytes) {
      WriteResponse(fd, {400, "text/plain; charset=utf-8",
                         "request too large\n"});
    }
    // else: torn/empty request — peer already gone, answer nothing
    return;
  }

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    WriteResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteResponse(fd, {405, "text/plain; charset=utf-8",
                       "method not allowed\n"});
    return;
  }
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (target.empty() || target[0] != '/') {
    WriteResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    WriteResponse(fd, {404, "text/plain; charset=utf-8", "not found\n"});
    return;
  }
  WriteResponse(fd, it->second());
}

}  // namespace obs
}  // namespace l1hh
