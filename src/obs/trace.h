// Lock-free trace ring for lifecycle events.
//
// A fixed power-of-two ring of structured events (timestamp, severity, a
// static-string event name, two integer payloads). Emit claims a slot with
// one relaxed fetch_add and publishes with a release store of the slot's
// ticket; no locks, no CAS loops. Readers snapshot slots and discard torn
// reads by re-checking the ticket — every slot field is an atomic, so racing
// reads are well-defined (and TSan-clean) rather than seqlock-style UB.
//
// Event names MUST be string literals (or otherwise immortal): only the
// pointer is stored.
#ifndef L1HH_OBS_TRACE_H_
#define L1HH_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace l1hh {
namespace obs {

enum class Severity : uint32_t { kDebug = 0, kInfo = 1, kWarn = 2 };

struct TraceEvent {
  uint64_t seq = 0;       // global emission order (0-based)
  uint64_t ns = 0;        // nanoseconds since process start
  Severity sev = Severity::kInfo;
  const char* name = "";  // static event name, e.g. "checkpoint.commit"
  int64_t a = 0;          // event-specific payloads (shard id, duration, ...)
  int64_t b = 0;
};

class TraceRing {
 public:
  static constexpr size_t kCapacity = 1024;  // power of two

  static TraceRing& Get();

  // Nanoseconds since process start (steady clock).
  static uint64_t NowNs();

  void Emit(Severity sev, const char* name, int64_t a = 0, int64_t b = 0);

  // The most recent events, oldest first. Events overwritten mid-read are
  // dropped, never returned torn.
  std::vector<TraceEvent> Snapshot() const;

  // Snapshot rendered as text lines: "<seq> <ns>ns <sev> <name> a=<a> b=<b>".
  // `max_events` keeps only the newest that many surviving lines (0 = all);
  // `min_sev` drops events below that severity first. This is what the
  // serving tools' `trace <N> [min_severity]` verb calls.
  std::vector<std::string> DrainText(
      size_t max_events = 0, Severity min_sev = Severity::kDebug) const;

  uint64_t emitted() const { return head_.load(std::memory_order_relaxed); }

  void ResetForTest();

 private:
  TraceRing() = default;

  struct Slot {
    // ticket == seq + 1 of the event stored here; 0 means never written.
    std::atomic<uint64_t> ticket{0};
    std::atomic<uint64_t> ns{0};
    std::atomic<uint32_t> sev{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
  };

  alignas(64) std::atomic<uint64_t> head_{0};
  Slot slots_[kCapacity];
};

// Convenience wrapper honoring the global Enabled() switch.
void Trace(Severity sev, const char* name, int64_t a = 0, int64_t b = 0);

// Parses "debug"/"info"/"warn" (the wire spellings DrainText renders);
// false on anything else.
bool ParseSeverity(const std::string& text, Severity* out);

}  // namespace obs
}  // namespace l1hh

#endif  // L1HH_OBS_TRACE_H_
