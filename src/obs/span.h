// Query-path spans: one span per served query verb, broken into named
// phases, feeding the registry's histograms and the trace ring.
//
// A QuerySpan is opened where a verb is accepted (a serving connection
// handler, or a ShardedEngine query method for embedders calling the
// engine directly) and closed when the reply is written. While it is the
// thread's CURRENT span, any ScopedPhase on the same thread attributes
// its wall time to it — so the engine's park-wait and merge-rebuild code
// contributes phases to whatever verb is in flight without the engine
// and the server knowing about each other. Spans nest by flattening: if
// a span is already current on this thread, an inner span is inert and
// the outer one absorbs every phase (the engine's own span disappears
// under a server verb's span instead of double-counting the query).
//
// On End() a span observes
//   l1hh_query_latency_ns{verb="..."}            (total wall time)
//   l1hh_query_phase_ns{phase="...",verb="..."}  (one series per phase)
// and, when the total exceeds the process-wide slow-query threshold,
// records itself into the fixed-size SlowQueryRing (dumped by the `slow`
// wire verb) and bumps l1hh_slow_queries_total.
//
// Spans live on query paths, never ingest paths, so they are outside the
// L1HH_OBS_TOLERANCE overhead gate's hot loop by construction. All names
// (verbs and phases) MUST be string literals: only pointers are stored.
#ifndef L1HH_OBS_SPAN_H_
#define L1HH_OBS_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace l1hh {
namespace obs {

// Process-wide slow-query threshold in nanoseconds; 0 disables slow-query
// capture (the default — serving binaries set it from --slow-query-us).
void SetSlowQueryThresholdNs(uint64_t ns);
uint64_t SlowQueryThresholdNs();

class QuerySpan {
 public:
  static constexpr size_t kMaxPhases = 8;

  // `verb` must be a string literal. The span becomes the thread's
  // current span unless one is already open (then it is inert) or the
  // global Enabled() switch is off.
  explicit QuerySpan(const char* verb);
  ~QuerySpan();
  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;

  // Adds `ns` to the named phase (same-name contributions accumulate;
  // phases beyond kMaxPhases are dropped). Usually called via ScopedPhase.
  void AddPhase(const char* name, uint64_t ns);

  // Closes the span: observes the histograms, emits a trace event for
  // slow queries, records into the slow ring. Idempotent; the destructor
  // calls it.
  void End();

  // The calling thread's open span, or nullptr.
  static QuerySpan* Current();

  const char* verb() const { return verb_; }

 private:
  friend class SlowQueryRing;

  const char* verb_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
  bool ended_ = false;
  size_t phase_count_ = 0;
  const char* phase_names_[kMaxPhases] = {};
  uint64_t phase_ns_[kMaxPhases] = {};
};

// Attributes the enclosed scope's wall time to the thread's current span
// (no-op — not even a clock read — when no span is open).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name)
      : name_(name),
        t0_(QuerySpan::Current() != nullptr ? TraceRing::NowNs() : 0) {}
  ~ScopedPhase() {
    if (t0_ == 0) return;
    QuerySpan* span = QuerySpan::Current();
    if (span != nullptr) span->AddPhase(name_, TraceRing::NowNs() - t0_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  uint64_t t0_;
};

// One captured slow query: the verb, when it started, and its per-phase
// breakdown.
struct SlowQuery {
  uint64_t seq = 0;       // capture order (0-based, monotone)
  uint64_t start_ns = 0;  // nanoseconds since process start
  uint64_t total_ns = 0;
  const char* verb = "";
  size_t phase_count = 0;
  const char* phase_names[QuerySpan::kMaxPhases] = {};
  uint64_t phase_ns[QuerySpan::kMaxPhases] = {};
};

// Fixed-size ring of the most recent slow queries. Mutex-guarded: by
// definition only queries already past the slowness threshold enter, so
// this is never a hot path.
class SlowQueryRing {
 public:
  static constexpr size_t kCapacity = 64;

  static SlowQueryRing& Get();

  void Record(const SlowQuery& q);

  // The surviving records, oldest first.
  std::vector<SlowQuery> Snapshot() const;

  // Text rendering for the `slow` wire verb:
  // "<seq> <start_ns>ns <verb> total_us=<t> <phase>_us=<p>...".
  std::vector<std::string> DrainText() const;

  void ResetForTest();

 private:
  SlowQueryRing() = default;

  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  SlowQuery slots_[kCapacity];
};

}  // namespace obs
}  // namespace l1hh

#endif  // L1HH_OBS_SPAN_H_
