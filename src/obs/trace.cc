#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace l1hh {
namespace obs {

TraceRing& TraceRing::Get() {
  static TraceRing* ring = new TraceRing();  // leaked: outlives all threads
  return *ring;
}

uint64_t TraceRing::NowNs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void TraceRing::Emit(Severity sev, const char* name, int64_t a, int64_t b) {
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (kCapacity - 1)];
  slot.ns.store(NowNs(), std::memory_order_relaxed);
  slot.sev.store(static_cast<uint32_t>(sev), std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Publish: the ticket is the last write. Readers re-check it after loading
  // the payload, so a slot reused for a newer event is detected and dropped.
  slot.ticket.store(seq + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t begin = head > kCapacity ? head - kCapacity : 0;
  out.reserve(static_cast<size_t>(head - begin));
  for (uint64_t seq = begin; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (kCapacity - 1)];
    const uint64_t ticket = slot.ticket.load(std::memory_order_acquire);
    if (ticket != seq + 1) continue;  // not yet published or already reused
    TraceEvent ev;
    ev.seq = seq;
    ev.ns = slot.ns.load(std::memory_order_relaxed);
    ev.sev = static_cast<Severity>(slot.sev.load(std::memory_order_relaxed));
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    // Torn-read guard: if a writer lapped us mid-read, drop the event.
    if (slot.ticket.load(std::memory_order_acquire) != seq + 1) continue;
    if (ev.name == nullptr) continue;
    out.push_back(ev);
  }
  return out;
}

std::vector<std::string> TraceRing::DrainText(size_t max_events,
                                              Severity min_sev) const {
  std::vector<std::string> lines;
  for (const TraceEvent& ev : Snapshot()) {
    if (static_cast<uint32_t>(ev.sev) < static_cast<uint32_t>(min_sev)) {
      continue;
    }
    const char* sev = ev.sev == Severity::kWarn
                          ? "warn"
                          : (ev.sev == Severity::kDebug ? "debug" : "info");
    lines.push_back(std::to_string(ev.seq) + " " + std::to_string(ev.ns) +
                    "ns " + sev + " " + ev.name + " a=" + std::to_string(ev.a) +
                    " b=" + std::to_string(ev.b));
  }
  // Newest-N: the tail of the surviving lines, still oldest first.
  if (max_events != 0 && lines.size() > max_events) {
    lines.erase(lines.begin(),
                lines.end() - static_cast<ptrdiff_t>(max_events));
  }
  return lines;
}

void TraceRing::ResetForTest() {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.ticket.store(0, std::memory_order_relaxed);
    slot.name.store(nullptr, std::memory_order_relaxed);
  }
}

void Trace(Severity sev, const char* name, int64_t a, int64_t b) {
  if (!Enabled()) return;
  TraceRing::Get().Emit(sev, name, a, b);
}

bool ParseSeverity(const std::string& text, Severity* out) {
  if (text == "debug") {
    *out = Severity::kDebug;
  } else if (text == "info") {
    *out = Severity::kInfo;
  } else if (text == "warn") {
    *out = Severity::kWarn;
  } else {
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace l1hh
