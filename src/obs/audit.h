// Live accuracy auditor: watches the served answers against an exact
// shadow of a hash-sampled key subspace, so the one number the paper
// promises — estimates within eps*m of truth (Definition 1) — becomes an
// observed, alertable metric instead of a theorem the operator takes on
// faith.
//
// Sampling is by KEY IDENTITY, not by occurrence: item x is audited iff
// Mix64(x ^ seed') % rate == 0. Every occurrence of a sampled key is
// counted, so the shadow's per-key counts are EXACT — comparisons need
// no unscaling and carry no sampling variance (an alert means the
// summary is broken, not that a coin flipped badly). What the rate
// scales is coverage and memory: a 1/rate fraction of the key space is
// shadowed, bounding expected tracked keys to distinct/rate (further
// hard-capped by max_shadow_keys; overflow keys are counted, not
// tracked). Because the sampled-or-not decision depends only on
// (key, seed), shards and processes sampling with the same seed select
// the same keys, and their shadows compose by addition (MergeFrom) or
// travel the replication wire as plain (key, count) pairs.
//
// An Audit() pass takes the engine's answers through two callbacks,
// compares them against the shadow, and publishes
//   l1hh_audit_observed_abs_error   histogram, |Estimate - exact| per key
//   l1hh_audit_observed_eps_ratio   gauge, max error / (eps * m) — the
//                                   operator alert number (> 1 = broken)
//   l1hh_audit_shadow_recall        gauge, fraction of shadow-certified
//                                   phi-heavy keys present in
//                                   HeavyHitters(phi)
//   l1hh_audit_shadow_keys          gauge, tracked keys
//   l1hh_audit_runs_total           counter
#ifndef L1HH_OBS_AUDIT_H_
#define L1HH_OBS_AUDIT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {
namespace obs {

struct AuditorOptions {
  uint64_t sample_rate = 64;  // audit ~1/rate of the key space; 1 = all keys
  uint64_t seed = 1;          // must match across shards/processes to compose
  size_t max_shadow_keys = size_t{1} << 14;  // hard memory bound
  double epsilon = 0.01;  // the configured contract the ratio is scored against
  double phi = 0.05;      // heavy-hitter threshold for the recall check
  size_t audit_top_k = 32;  // estimate-check the top-k shadow keys
};

struct AuditReport {
  uint64_t items_seen = 0;     // every observed item, sampled or not
  uint64_t sampled_items = 0;  // occurrences of sampled keys
  size_t shadow_keys = 0;      // keys tracked exactly
  uint64_t dropped_items = 0;  // sampled occurrences refused by the key cap
  size_t audited_keys = 0;     // keys whose Estimate was compared
  double max_abs_error = 0.0;
  double eps_ratio = 0.0;  // max_abs_error / (epsilon * total_items)
  size_t shadow_heavies = 0;  // shadow keys with exact count > phi * m
  size_t recalled = 0;        // of those, present in HeavyHitters(phi)
  double recall = 1.0;        // recalled / shadow_heavies (1 when none)
};

class AccuracyAuditor {
 public:
  explicit AccuracyAuditor(const AuditorOptions& options);

  const AuditorOptions& options() const { return options_; }

  // Deterministic per-(seed, rate) membership test for the sampled key
  // subspace. Cheap (one Mix64 + one modulo); no lock.
  bool SampledKey(uint64_t item) const;

  // Ingest taps. Thread-safe: the non-sampled fast path is lock-free,
  // sampled hits take the shadow mutex (once per batch for the column
  // form). Call per item or per batch beside the real ingest.
  void Observe(uint64_t item);
  void ObserveColumn(const uint64_t* items, size_t n);

  // Folds `other`'s shadow into this one (shards over disjoint substreams
  // compose exactly). InvalidArgument unless seed/rate match.
  Status MergeFrom(const AccuracyAuditor& other);

  // The largest-count shadow keys, count-descending (ties by key id), for
  // shipping truth to a replica or for tests. k == 0 means all.
  std::vector<std::pair<uint64_t, uint64_t>> TopShadow(size_t k) const;

  uint64_t items_seen() const;

  using EstimateBatchFn =
      std::function<std::vector<double>(const std::vector<uint64_t>&)>;
  using HeavyHittersFn =
      std::function<std::vector<ItemEstimate>(double phi)>;

  // One audit pass: compares estimates on the top-k shadow keys and
  // HeavyHitters(phi) recall on shadow-certified heavies against exact
  // shadow truth, publishes the l1hh_audit_* instruments, and returns the
  // report. `total_items` is the engine's m' (the eps*m denominator and
  // the phi threshold base). Thread-safe; must not be called from inside
  // the callbacks.
  AuditReport Audit(const EstimateBatchFn& estimate,
                    const HeavyHittersFn& heavy_hitters,
                    uint64_t total_items);

  // Convenience for single-summary embedders (the CLI's --audit).
  AuditReport AuditSummary(const Summary& summary);

 private:
  const AuditorOptions options_;
  const uint64_t mixed_seed_;  // pre-mixed so SampledKey is one Mix64

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> shadow_;
  uint64_t dropped_items_ = 0;
  uint64_t sampled_items_ = 0;
  std::atomic<uint64_t> items_seen_{0};  // bumped outside the mutex
};

// Publishes a report computed elsewhere (the replica audits against a
// shadow shipped from the primary rather than one it sampled itself).
void PublishAuditReport(const AuditReport& report);

}  // namespace obs
}  // namespace l1hh

#endif  // L1HH_OBS_AUDIT_H_
