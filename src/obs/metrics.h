// Process-wide lock-free telemetry registry.
//
// Counters, gauges, and log2-bucket histograms registered by name (plus an
// optional fixed label string). Increments on the ingest hot path are
// relaxed-atomic adds on cache-line-padded striped slots — no locks, no CAS
// loops, same discipline as the engine's ring grid. Aggregation (summing
// stripes, rendering exposition text) happens only at scrape time.
//
// Instruments are process-wide singletons: two engines in one process share
// the same named counter. Per-instance views belong to snapshot structs such
// as ShardedEngine::EngineMetrics, not the registry.
#ifndef L1HH_OBS_METRICS_H_
#define L1HH_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace l1hh {
namespace obs {

// Global instrumentation switch. When false, Inc/Add/Set/Observe return
// immediately after one relaxed load — this is what the batch_perf_test
// overhead gate compares against. Scraping still works (values freeze).
bool Enabled();
void SetEnabled(bool on);

namespace detail {
struct alignas(64) PaddedSlot {
  std::atomic<uint64_t> v{0};
};
// Stripe index for the calling thread (assigned once, masked per use).
size_t ThreadStripe();
}  // namespace detail

// Monotone counter. Striped across kStripes padded slots so racing
// producers do not bounce one cache line.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Inc(uint64_t n = 1) {
    if (!Enabled()) return;
    slots_[detail::ThreadStripe() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void ResetForTest() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedSlot slots_[kStripes];
};

// Point-in-time fractional value (ratios, seconds). Same relaxed-atomic
// discipline as Gauge; exposition renders it with %g so a scraper parses
// it as a float. Exists because the audit layer publishes numbers like
// observed-error / (eps*m) that are meaningless when truncated to int.
class FloatGauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void ResetForTest() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Point-in-time signed value. Set/Add are relaxed; SetMax is a
// load-compare-store intended for single-writer high-water tracking (e.g.
// a shard's owning worker) — racing writers may lose an update, never
// corrupt the value.
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!Enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void SetMax(int64_t v) {
    if (!Enabled()) return;
    if (v > v_.load(std::memory_order_relaxed))
      v_.store(v, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void ResetForTest() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed log2 buckets: bucket i counts observations v with bit_width(v) == i,
// i.e. bucket 0 is v == 0, bucket i >= 1 covers [2^(i-1), 2^i). Upper bounds
// rendered in exposition are therefore 0, 1, 3, 7, ..., +Inf (cumulative,
// Prometheus style: `le` is the largest value the bucket admits). Observations are per-batch or per-event, not per-item,
// so plain relaxed adds (no striping) are cheap enough.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  void Observe(uint64_t v) {
    if (!Enabled()) return;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  static size_t BucketIndex(uint64_t v) {
    size_t i = 0;
    while (v != 0) {
      ++i;
      v >>= 1;
    }
    return i;
  }
  // Inclusive upper bound of bucket i (v <= bound <=> v falls in buckets
  // 0..i): 0 for bucket 0, 2^i - 1 for bucket i >= 1.
  static uint64_t BucketBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void ResetForTest() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Name + label-set keyed registry. Lookup takes a mutex (cold path: do it
// once at startup and cache the pointer); returned pointers stay valid for
// the life of the process.
class Registry {
 public:
  static Registry& Get();

  // `labels` is the literal inside the braces, e.g. `shard="3"`, or empty.
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  FloatGauge* GetFloatGauge(const std::string& name,
                            const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  // Prometheus-style text exposition, one `name{labels} value` line per
  // counter/gauge; histograms render cumulative `_bucket{le="..."}` series
  // plus `_sum` and `_count`. Lines are sorted for stable output.
  std::string Exposition() const;
  // Exposition split into lines (convenience for line-oriented protocols).
  std::vector<std::string> ExpositionLines() const;

  // Zero every registered instrument (pointers stay valid).
  void ResetForTest();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();
  mutable std::atomic<Impl*> impl_{nullptr};
};

// Convenience: cache-once accessors for the common case.
inline Counter* GetCounter(const std::string& name,
                           const std::string& labels = "") {
  return Registry::Get().GetCounter(name, labels);
}
inline Gauge* GetGauge(const std::string& name,
                       const std::string& labels = "") {
  return Registry::Get().GetGauge(name, labels);
}
inline FloatGauge* GetFloatGauge(const std::string& name,
                                 const std::string& labels = "") {
  return Registry::Get().GetFloatGauge(name, labels);
}
inline Histogram* GetHistogram(const std::string& name,
                               const std::string& labels = "") {
  return Registry::Get().GetHistogram(name, labels);
}

// The version stamp the serving binaries export as
// `l1hh_build_info{algo=...,component=...,version=...} 1` at startup so a
// fleet dashboard can pivot every other series by build.
inline constexpr const char kBuildVersion[] = "0.10.0";

inline void EmitBuildInfo(const std::string& component,
                          const std::string& algo) {
  GetGauge("l1hh_build_info", "algo=\"" + algo + "\",component=\"" +
                                  component + "\",version=\"" +
                                  kBuildVersion + "\"")
      ->Set(1);
}

}  // namespace obs
}  // namespace l1hh

#endif  // L1HH_OBS_METRICS_H_
