#include "obs/span.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace l1hh {
namespace obs {

namespace {
std::atomic<uint64_t> g_slow_threshold_ns{0};
thread_local QuerySpan* tls_current_span = nullptr;
}  // namespace

void SetSlowQueryThresholdNs(uint64_t ns) {
  g_slow_threshold_ns.store(ns, std::memory_order_relaxed);
}

uint64_t SlowQueryThresholdNs() {
  return g_slow_threshold_ns.load(std::memory_order_relaxed);
}

QuerySpan::QuerySpan(const char* verb) : verb_(verb) {
  if (!Enabled() || tls_current_span != nullptr) return;
  active_ = true;
  start_ns_ = TraceRing::NowNs();
  tls_current_span = this;
}

QuerySpan::~QuerySpan() { End(); }

QuerySpan* QuerySpan::Current() { return tls_current_span; }

void QuerySpan::AddPhase(const char* name, uint64_t ns) {
  if (!active_ || ended_) return;
  for (size_t i = 0; i < phase_count_; ++i) {
    if (std::strcmp(phase_names_[i], name) == 0) {
      phase_ns_[i] += ns;
      return;
    }
  }
  if (phase_count_ == kMaxPhases) return;  // breakdown saturated, total wins
  phase_names_[phase_count_] = name;
  phase_ns_[phase_count_] = ns;
  ++phase_count_;
}

void QuerySpan::End() {
  if (!active_ || ended_) return;
  ended_ = true;
  tls_current_span = nullptr;
  const uint64_t total = TraceRing::NowNs() - start_ns_;
  // Registry lookups here are map-under-mutex, fine off the ingest path.
  const std::string verb_label = std::string("verb=\"") + verb_ + "\"";
  GetHistogram("l1hh_query_latency_ns", verb_label)->Observe(total);
  for (size_t i = 0; i < phase_count_; ++i) {
    GetHistogram("l1hh_query_phase_ns", std::string("phase=\"") +
                                            phase_names_[i] + "\"," +
                                            verb_label)
        ->Observe(phase_ns_[i]);
  }
  const uint64_t threshold = SlowQueryThresholdNs();
  if (threshold == 0 || total < threshold) return;
  GetCounter("l1hh_slow_queries_total")->Inc();
  Trace(Severity::kWarn, "query.slow", static_cast<int64_t>(total),
        static_cast<int64_t>(phase_count_));
  SlowQuery record;
  record.start_ns = start_ns_;
  record.total_ns = total;
  record.verb = verb_;
  record.phase_count = phase_count_;
  for (size_t i = 0; i < phase_count_; ++i) {
    record.phase_names[i] = phase_names_[i];
    record.phase_ns[i] = phase_ns_[i];
  }
  SlowQueryRing::Get().Record(record);
}

SlowQueryRing& SlowQueryRing::Get() {
  static SlowQueryRing* ring = new SlowQueryRing();  // leaked, like the others
  return *ring;
}

void SlowQueryRing::Record(const SlowQuery& q) {
  std::lock_guard<std::mutex> lock(mu_);
  SlowQuery& slot = slots_[next_seq_ % kCapacity];
  slot = q;
  slot.seq = next_seq_++;
}

std::vector<SlowQuery> SlowQueryRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQuery> out;
  const uint64_t count = std::min<uint64_t>(next_seq_, kCapacity);
  out.reserve(static_cast<size_t>(count));
  for (uint64_t seq = next_seq_ - count; seq < next_seq_; ++seq) {
    out.push_back(slots_[seq % kCapacity]);
  }
  return out;
}

std::vector<std::string> SlowQueryRing::DrainText() const {
  std::vector<std::string> lines;
  for (const SlowQuery& q : Snapshot()) {
    std::string line = std::to_string(q.seq) + " " +
                       std::to_string(q.start_ns) + "ns " + q.verb +
                       " total_us=" + std::to_string(q.total_ns / 1000);
    for (size_t i = 0; i < q.phase_count; ++i) {
      line += std::string(" ") + q.phase_names[i] +
              "_us=" + std::to_string(q.phase_ns[i] / 1000);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void SlowQueryRing::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = 0;
}

}  // namespace obs
}  // namespace l1hh
