// Minimal dependency-free HTTP/1.1 exporter for the telemetry surface.
//
// One listener thread on a loopback TCP port, GET-only, one request per
// connection (every response carries Connection: close). Built for
// exactly three endpoints — /metrics (Prometheus text exposition),
// /healthz, /readyz — wired up as caller-supplied handlers, so
// l1hh_serve and l1hh_replica mount the same exporter with different
// readiness semantics.
//
// Hardened the way anything listening on a port must be: a bounded read
// budget (oversized headers are a 400, never an allocation), a receive
// timeout (a half-sent request occupies the thread for at most
// read_timeout_ms), and strict request-line parsing (garbage is a 400,
// a non-GET method a 405, an unknown path a 404). Handlers run on the
// exporter thread; everything they touch (the registry, the engine's
// query API) is already thread-safe.
#ifndef L1HH_OBS_HTTP_EXPORTER_H_
#define L1HH_OBS_HTTP_EXPORTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/status.h"

namespace l1hh {
namespace obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct HttpExporterOptions {
  uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after Create
  std::string bind_address = "127.0.0.1";  // loopback: telemetry, not serving
  size_t max_request_bytes = 8192;  // request head budget; beyond it -> 400
  int read_timeout_ms = 2000;      // torn-request eviction
};

class HttpExporter {
 public:
  using Handler = std::function<HttpResponse()>;

  // Binds, listens, and starts the serving thread. `handlers` maps exact
  // paths ("/metrics") to response producers; query strings are stripped
  // before lookup. Returns nullptr (with `status`) if the bind fails.
  static std::unique_ptr<HttpExporter> Create(
      const HttpExporterOptions& options,
      std::map<std::string, Handler> handlers, Status* status = nullptr);

  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // The actually-bound port (resolves port 0).
  uint16_t port() const { return port_; }

  // Stops accepting, joins the thread. Idempotent; the destructor calls it.
  void Stop();

 private:
  HttpExporter(const HttpExporterOptions& options,
               std::map<std::string, Handler> handlers, int listen_fd,
               uint16_t port);

  void ServeLoop();
  void HandleConnection(int fd);

  const HttpExporterOptions options_;
  const std::map<std::string, Handler> handlers_;
  int listen_fd_;
  uint16_t port_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace l1hh

#endif  // L1HH_OBS_HTTP_EXPORTER_H_
