#include "obs/audit.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/random.h"

namespace l1hh {
namespace obs {

namespace {
// Decorrelates the sampling hash from the engine's shard router (which
// reduces a bare Mix64(item)): a shard must not see a biased sampled set.
constexpr uint64_t kAuditSeedSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

AccuracyAuditor::AccuracyAuditor(const AuditorOptions& options)
    : options_(options), mixed_seed_(Mix64(options.seed ^ kAuditSeedSalt)) {}

bool AccuracyAuditor::SampledKey(uint64_t item) const {
  if (options_.sample_rate <= 1) return true;
  return Mix64(item ^ mixed_seed_) % options_.sample_rate == 0;
}

void AccuracyAuditor::Observe(uint64_t item) {
  items_seen_.fetch_add(1, std::memory_order_relaxed);
  if (!SampledKey(item)) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++sampled_items_;
  auto it = shadow_.find(item);
  if (it != shadow_.end()) {
    ++it->second;
    return;
  }
  if (shadow_.size() >= options_.max_shadow_keys) {
    ++dropped_items_;
    return;
  }
  shadow_.emplace(item, 1);
}

void AccuracyAuditor::ObserveColumn(const uint64_t* items, size_t n) {
  items_seen_.fetch_add(n, std::memory_order_relaxed);
  // Scan lock-free, then apply the (typically ~n/rate) hits in one
  // critical section.
  std::vector<uint64_t> hits;
  for (size_t i = 0; i < n; ++i) {
    if (SampledKey(items[i])) hits.push_back(items[i]);
  }
  if (hits.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  sampled_items_ += hits.size();
  for (const uint64_t item : hits) {
    auto it = shadow_.find(item);
    if (it != shadow_.end()) {
      ++it->second;
    } else if (shadow_.size() >= options_.max_shadow_keys) {
      ++dropped_items_;
    } else {
      shadow_.emplace(item, 1);
    }
  }
}

Status AccuracyAuditor::MergeFrom(const AccuracyAuditor& other) {
  if (other.options_.seed != options_.seed ||
      other.options_.sample_rate != options_.sample_rate) {
    return Status::InvalidArgument(
        "auditor merge requires matching seed and sample rate");
  }
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [key, count] : other.shadow_) {
    auto it = shadow_.find(key);
    if (it != shadow_.end()) {
      it->second += count;
    } else if (shadow_.size() >= options_.max_shadow_keys) {
      dropped_items_ += count;
    } else {
      shadow_.emplace(key, count);
    }
  }
  dropped_items_ += other.dropped_items_;
  sampled_items_ += other.sampled_items_;
  items_seen_.fetch_add(other.items_seen_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return Status::Ok();
}

std::vector<std::pair<uint64_t, uint64_t>> AccuracyAuditor::TopShadow(
    size_t k) const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.assign(shadow_.begin(), shadow_.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second > b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  if (k != 0 && entries.size() > k) entries.resize(k);
  return entries;
}

uint64_t AccuracyAuditor::items_seen() const {
  return items_seen_.load(std::memory_order_relaxed);
}

AuditReport AccuracyAuditor::Audit(const EstimateBatchFn& estimate,
                                   const HeavyHittersFn& heavy_hitters,
                                   uint64_t total_items) {
  AuditReport report;
  report.items_seen = items_seen();
  const auto top = TopShadow(options_.audit_top_k);
  std::vector<uint64_t> heavies;  // shadow-certified phi-heavy keys
  const double heavy_threshold =
      options_.phi * static_cast<double>(total_items);
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.sampled_items = sampled_items_;
    report.shadow_keys = shadow_.size();
    report.dropped_items = dropped_items_;
    for (const auto& [key, count] : shadow_) {
      if (static_cast<double>(count) > heavy_threshold) {
        heavies.push_back(key);
      }
    }
  }
  static Histogram* const abs_error_hist =
      GetHistogram("l1hh_audit_observed_abs_error");
  std::vector<uint64_t> keys;
  keys.reserve(top.size());
  for (const auto& [key, count] : top) keys.push_back(key);
  const std::vector<double> estimates = estimate(keys);
  report.audited_keys = std::min(estimates.size(), top.size());
  for (size_t i = 0; i < report.audited_keys; ++i) {
    const double err =
        std::fabs(estimates[i] - static_cast<double>(top[i].second));
    report.max_abs_error = std::max(report.max_abs_error, err);
    abs_error_hist->Observe(static_cast<uint64_t>(std::llround(err)));
  }
  const double denom =
      options_.epsilon * static_cast<double>(total_items);
  report.eps_ratio = denom > 0 ? report.max_abs_error / denom : 0.0;
  report.shadow_heavies = heavies.size();
  if (!heavies.empty()) {
    const std::vector<ItemEstimate> reported =
        heavy_hitters(options_.phi);
    std::unordered_set<uint64_t> reported_keys;
    reported_keys.reserve(reported.size());
    for (const ItemEstimate& hh : reported) reported_keys.insert(hh.item);
    for (const uint64_t key : heavies) {
      if (reported_keys.count(key) != 0) ++report.recalled;
    }
    report.recall = static_cast<double>(report.recalled) /
                    static_cast<double>(report.shadow_heavies);
  }
  PublishAuditReport(report);
  return report;
}

AuditReport AccuracyAuditor::AuditSummary(const Summary& summary) {
  return Audit(
      [&summary](const std::vector<uint64_t>& keys) {
        std::vector<double> out;
        out.reserve(keys.size());
        for (const uint64_t key : keys) out.push_back(summary.Estimate(key));
        return out;
      },
      [&summary](double phi) { return summary.HeavyHitters(phi); },
      summary.ItemsProcessed());
}

void PublishAuditReport(const AuditReport& report) {
  static FloatGauge* const eps_ratio =
      GetFloatGauge("l1hh_audit_observed_eps_ratio");
  static FloatGauge* const recall =
      GetFloatGauge("l1hh_audit_shadow_recall");
  static Gauge* const shadow_keys = GetGauge("l1hh_audit_shadow_keys");
  static Counter* const runs = GetCounter("l1hh_audit_runs_total");
  eps_ratio->Set(report.eps_ratio);
  recall->Set(report.recall);
  shadow_keys->Set(static_cast<int64_t>(report.shadow_keys));
  runs->Inc();
}

}  // namespace obs
}  // namespace l1hh
