#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace l1hh {
namespace obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_next_stripe{0};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {
size_t ThreadStripe() {
  thread_local size_t stripe =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}
}  // namespace detail

struct Registry::Impl {
  std::mutex mu;
  // Key is (name, labels). Instruments live in deques so pointers returned
  // from Get* stay valid as the registry grows.
  std::map<std::pair<std::string, std::string>, Counter*> counters;
  std::map<std::pair<std::string, std::string>, Gauge*> gauges;
  std::map<std::pair<std::string, std::string>, FloatGauge*> float_gauges;
  std::map<std::pair<std::string, std::string>, Histogram*> histograms;
  std::deque<Counter> counter_store;
  std::deque<Gauge> gauge_store;
  std::deque<FloatGauge> float_gauge_store;
  std::deque<Histogram> histogram_store;
};

Registry& Registry::Get() {
  static Registry* reg = new Registry();  // leaked: outlives all threads
  return *reg;
}

Registry::Impl* Registry::impl() {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(p, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return p;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto key = std::make_pair(name, labels);
  auto it = im->counters.find(key);
  if (it != im->counters.end()) return it->second;
  im->counter_store.emplace_back();
  Counter* c = &im->counter_store.back();
  im->counters.emplace(std::move(key), c);
  return c;
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto key = std::make_pair(name, labels);
  auto it = im->gauges.find(key);
  if (it != im->gauges.end()) return it->second;
  im->gauge_store.emplace_back();
  Gauge* g = &im->gauge_store.back();
  im->gauges.emplace(std::move(key), g);
  return g;
}

FloatGauge* Registry::GetFloatGauge(const std::string& name,
                                    const std::string& labels) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto key = std::make_pair(name, labels);
  auto it = im->float_gauges.find(key);
  if (it != im->float_gauges.end()) return it->second;
  im->float_gauge_store.emplace_back();
  FloatGauge* g = &im->float_gauge_store.back();
  im->float_gauges.emplace(std::move(key), g);
  return g;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto key = std::make_pair(name, labels);
  auto it = im->histograms.find(key);
  if (it != im->histograms.end()) return it->second;
  im->histogram_store.emplace_back();
  Histogram* h = &im->histogram_store.back();
  im->histograms.emplace(std::move(key), h);
  return h;
}

namespace {

std::string RenderName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

// Merge a base label set with an extra `le="..."` label.
std::string RenderBucketName(const std::string& name, const std::string& labels,
                             const std::string& le) {
  std::string inner = labels.empty() ? "" : labels + ",";
  return name + "_bucket{" + inner + "le=\"" + le + "\"}";
}

// Shortest %g form that a Prometheus scraper parses back losslessly
// enough for ratios/seconds (9 significant digits).
std::string RenderFloat(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::vector<std::string> Registry::ExpositionLines() const {
  Impl* im = const_cast<Registry*>(this)->impl();
  std::vector<std::string> lines;
  std::lock_guard<std::mutex> lock(im->mu);
  lines.reserve(im->counters.size() + im->gauges.size() +
                im->histograms.size() * 8);
  for (const auto& kv : im->counters) {
    lines.push_back(RenderName(kv.first.first, kv.first.second) + " " +
                    std::to_string(kv.second->Value()));
  }
  for (const auto& kv : im->gauges) {
    lines.push_back(RenderName(kv.first.first, kv.first.second) + " " +
                    std::to_string(kv.second->Value()));
  }
  for (const auto& kv : im->float_gauges) {
    lines.push_back(RenderName(kv.first.first, kv.first.second) + " " +
                    RenderFloat(kv.second->Value()));
  }
  for (const auto& kv : im->histograms) {
    const std::string& name = kv.first.first;
    const std::string& labels = kv.first.second;
    const Histogram* h = kv.second;
    // Render cumulative buckets up to the highest non-empty one, then +Inf.
    size_t top = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->BucketCount(i) != 0) top = i;
    }
    uint64_t cum = 0;
    for (size_t i = 0; i <= top; ++i) {
      cum += h->BucketCount(i);
      lines.push_back(RenderBucketName(
                          name, labels,
                          std::to_string(Histogram::BucketBound(i))) +
                      " " + std::to_string(cum));
    }
    lines.push_back(RenderBucketName(name, labels, "+Inf") + " " +
                    std::to_string(h->Count()));
    lines.push_back(RenderName(name + "_sum", labels) + " " +
                    std::to_string(h->Sum()));
    lines.push_back(RenderName(name + "_count", labels) + " " +
                    std::to_string(h->Count()));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string Registry::Exposition() const {
  std::string out;
  for (const std::string& line : ExpositionLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

void Registry::ResetForTest() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  for (auto& c : im->counter_store) c.ResetForTest();
  for (auto& g : im->gauge_store) g.ResetForTest();
  for (auto& g : im->float_gauge_store) g.ResetForTest();
  for (auto& h : im->histogram_store) h.ResetForTest();
}

}  // namespace obs
}  // namespace l1hh
