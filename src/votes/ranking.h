// Rankings (total orders / permutations) — the stream items of the paper's
// voting problems (Definitions 6–9): each stream update is an element of
// L(U), a permutation of the n candidates.
//
// A Ranking stores order[pos] = candidate at position pos (position 0 is
// the most preferred).  CompactEncode packs a vote into n * ceil(log2 n)
// bits — exactly the O(n log n) bits per vote the paper charges when
// Theorem 6 stores the sampled votes — and the Lehmer code gives the
// information-theoretically minimal log2(n!) bits encoding, used by the
// epsilon-Perm communication game.
#ifndef L1HH_VOTES_RANKING_H_
#define L1HH_VOTES_RANKING_H_

#include <cstdint>
#include <vector>

#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class Ranking {
 public:
  Ranking() = default;
  explicit Ranking(std::vector<uint32_t> order) : order_(std::move(order)) {}

  /// Identity ranking 0 > 1 > ... > n-1.
  static Ranking Identity(uint32_t n);

  /// Uniformly random permutation (Fisher–Yates).
  static Ranking Random(uint32_t n, Rng& rng);

  /// True iff order_ is a permutation of {0..n-1}.
  bool IsValid() const;

  uint32_t size() const { return static_cast<uint32_t>(order_.size()); }
  uint32_t At(uint32_t pos) const { return order_[pos]; }
  const std::vector<uint32_t>& order() const { return order_; }

  /// Position of each candidate (inverse permutation): out[c] = rank of c.
  std::vector<uint32_t> Positions() const;

  /// Borda contribution of this single vote: candidate at position p gets
  /// n - 1 - p points.
  uint64_t BordaPoints(uint32_t pos) const { return size() - 1 - pos; }

  /// True iff candidate a is ranked ahead of candidate b.
  bool Prefers(uint32_t a, uint32_t b) const;

  /// Fixed-width packing: n * ceil(log2 n) bits.
  void CompactEncode(BitWriter& out) const;
  static Ranking CompactDecode(BitReader& in, uint32_t n);

  /// Lehmer code: bijection between permutations of [n] and mixed-radix
  /// sequences; Encode/Decode round-trip exactly.
  std::vector<uint32_t> LehmerCode() const;
  static Ranking FromLehmerCode(const std::vector<uint32_t>& code);

  bool operator==(const Ranking& other) const {
    return order_ == other.order_;
  }

 private:
  std::vector<uint32_t> order_;
};

}  // namespace l1hh

#endif  // L1HH_VOTES_RANKING_H_
