// Exact election tabulation: ground truth for the voting-stream problems.
//
// Borda score of candidate i = sum over votes of #{j != i ranked below i}.
// Maximin score of i = min over j != i of #{votes ranking i above j}.
// Plurality = frequency of top position; veto = frequency of last position.
// These are the quantities the paper's Definitions 6–9 approximate.
#ifndef L1HH_VOTES_ELECTION_H_
#define L1HH_VOTES_ELECTION_H_

#include <cstdint>
#include <vector>

#include "votes/ranking.h"

namespace l1hh {

class Election {
 public:
  explicit Election(uint32_t num_candidates);

  void AddVote(const Ranking& vote);

  uint32_t num_candidates() const { return n_; }
  uint64_t num_votes() const { return votes_; }

  /// Exact Borda scores (index = candidate).
  std::vector<uint64_t> BordaScores() const { return borda_; }

  /// Exact maximin scores.
  std::vector<uint64_t> MaximinScores() const;

  /// pairwise(i, j) = number of votes ranking i ahead of j.
  uint64_t Pairwise(uint32_t i, uint32_t j) const {
    return pairwise_[static_cast<size_t>(i) * n_ + j];
  }

  std::vector<uint64_t> PluralityScores() const { return plurality_; }
  std::vector<uint64_t> VetoScores() const { return veto_; }

  uint32_t BordaWinner() const;
  uint32_t MaximinWinner() const;
  uint32_t PluralityWinner() const;

 private:
  uint32_t n_;
  uint64_t votes_ = 0;
  std::vector<uint64_t> borda_;
  std::vector<uint64_t> plurality_;
  std::vector<uint64_t> veto_;
  std::vector<uint64_t> pairwise_;  // n x n
};

}  // namespace l1hh

#endif  // L1HH_VOTES_ELECTION_H_
