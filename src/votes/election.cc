#include "votes/election.h"

#include <algorithm>

namespace l1hh {

Election::Election(uint32_t num_candidates)
    : n_(num_candidates),
      borda_(num_candidates, 0),
      plurality_(num_candidates, 0),
      veto_(num_candidates, 0),
      pairwise_(static_cast<size_t>(num_candidates) * num_candidates, 0) {}

void Election::AddVote(const Ranking& vote) {
  ++votes_;
  if (vote.size() == 0) return;
  plurality_[vote.At(0)] += 1;
  veto_[vote.At(vote.size() - 1)] += 1;
  for (uint32_t p = 0; p < vote.size(); ++p) {
    const uint32_t c = vote.At(p);
    borda_[c] += vote.BordaPoints(p);
    for (uint32_t q = p + 1; q < vote.size(); ++q) {
      pairwise_[static_cast<size_t>(c) * n_ + vote.At(q)] += 1;
    }
  }
}

std::vector<uint64_t> Election::MaximinScores() const {
  std::vector<uint64_t> scores(n_, 0);
  for (uint32_t i = 0; i < n_; ++i) {
    uint64_t best = UINT64_MAX;
    for (uint32_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      best = std::min(best, Pairwise(i, j));
    }
    scores[i] = (best == UINT64_MAX) ? 0 : best;
  }
  return scores;
}

namespace {
uint32_t ArgMax(const std::vector<uint64_t>& v) {
  uint32_t best = 0;
  for (uint32_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}
}  // namespace

uint32_t Election::BordaWinner() const { return ArgMax(borda_); }
uint32_t Election::MaximinWinner() const { return ArgMax(MaximinScores()); }
uint32_t Election::PluralityWinner() const { return ArgMax(plurality_); }

}  // namespace l1hh
