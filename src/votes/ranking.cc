#include "votes/ranking.h"

#include <algorithm>
#include <numeric>

#include "util/bit_util.h"

namespace l1hh {

Ranking Ranking::Identity(uint32_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  return Ranking(std::move(order));
}

Ranking Ranking::Random(uint32_t n, Rng& rng) {
  Ranking r = Identity(n);
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(rng.UniformU64(i));
    std::swap(r.order_[i - 1], r.order_[j]);
  }
  return r;
}

bool Ranking::IsValid() const {
  std::vector<bool> seen(order_.size(), false);
  for (const uint32_t c : order_) {
    if (c >= order_.size() || seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

std::vector<uint32_t> Ranking::Positions() const {
  std::vector<uint32_t> pos(order_.size());
  for (uint32_t p = 0; p < order_.size(); ++p) {
    pos[order_[p]] = p;
  }
  return pos;
}

bool Ranking::Prefers(uint32_t a, uint32_t b) const {
  for (const uint32_t c : order_) {
    if (c == a) return true;
    if (c == b) return false;
  }
  return false;
}

void Ranking::CompactEncode(BitWriter& out) const {
  const int width = CeilLog2(std::max<uint64_t>(order_.size(), 2));
  for (const uint32_t c : order_) {
    out.WriteBits(c, width);
  }
}

Ranking Ranking::CompactDecode(BitReader& in, uint32_t n) {
  const int width = CeilLog2(std::max<uint64_t>(n, 2));
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) {
    order[i] = static_cast<uint32_t>(in.ReadBits(width));
  }
  return Ranking(std::move(order));
}

std::vector<uint32_t> Ranking::LehmerCode() const {
  const uint32_t n = size();
  std::vector<uint32_t> code(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t smaller_later = 0;
    for (uint32_t j = i + 1; j < n; ++j) {
      if (order_[j] < order_[i]) ++smaller_later;
    }
    code[i] = smaller_later;
  }
  return code;
}

Ranking Ranking::FromLehmerCode(const std::vector<uint32_t>& code) {
  const uint32_t n = static_cast<uint32_t>(code.size());
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t idx = code[i];
    order.push_back(pool[idx]);
    pool.erase(pool.begin() + idx);
  }
  return Ranking(std::move(order));
}

}  // namespace l1hh
