// Sliding-window heavy hitters over mergeable summaries — the
// continuous-monitoring subsystem.  Design walkthrough: docs/WINDOWS.md.
//
// Every structure in this library answers "heavy since time zero"; real
// monitoring workloads ask "heavy in the last W items".  The paper's
// guarantees are distribution-free, so they compose over time buckets:
// cover the window of W items with B tumbling sub-window buckets of
// q = W/B items, give each bucket its own factory-made instance of a
// *mergeable* registered structure, feed the live bucket, rotate the ring
// at bucket boundaries (evicting the expired bucket), and serve queries
// from an on-demand Merge of the live buckets — the same merge machinery
// the sharded engine and the distributed snapshot workflow already rely
// on, pointed at time instead of space.
//
// Guarantee: at any instant the ring covers the last W' items with
// W - W/B <= W' < W (only the live bucket is partial), so a query pays at
// most one bucket of slack on top of the inner structure's contract.  In
// Definition-1 terms the windowed structure is an (eps', phi)-List heavy
// hitters summary over the covered suffix with
//
//     eps' = eps + 1/B
//
// — every item with >= phi fraction of the last W items is reported,
// nothing below (phi - eps')*W can be, and estimates are within eps'*W of
// the true last-W frequency.  tests/windowed_conformance_test.cc pins
// this for every mergeable structure on planted-drift streams.
//
// Wrapping is name-driven: MakeSummary("windowed:<inner>", options) builds
// this container around registry structure <inner>, sized by
// SummaryOptions::{window_size, window_buckets}.  Inner buckets are
// constructed from the same options (same seed — the Merge compatibility
// precondition) with stream_length set to the effective window, so the
// sampling-based structures size their rates for window-sized substreams.
// Non-mergeable inner structures (lossy_counting, sticky_sampling) are
// refused: their per-bucket states cannot be combined into a window view.
//
// Rotation modes: by default the container rotates itself every
// bucket_width() of its own updates.  The sharded engine instead drives
// rotation externally (set_external_rotation + Rotate) from the *global*
// enqueued count, so K per-shard windows stay bucket-aligned and remain
// bucket-wise mergeable; see ShardedEngine and docs/WINDOWS.md.
//
// Thread-safety: same contract as every Summary — single-threaded; the
// const queries share the mutable merged-view cache.
#ifndef L1HH_WINDOW_SLIDING_WINDOW_SUMMARY_H_
#define L1HH_WINDOW_SLIDING_WINDOW_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {

class SlidingWindowSummary : public Summary {
 public:
  /// Builds the window container around registered structure `inner_name`
  /// (which must support Merge).  Geometry comes from
  /// options.window_size (W; 0 = stream_length if set, else 2^20) and
  /// options.window_buckets (B; 0 = 8, capped at kMaxBuckets).  The
  /// bucket width is q = max(1, W / B) and the effective window is q*B
  /// (W is rounded down to a multiple of B; never below B).  Returns
  /// nullptr — with the reason in *status when given — for unknown,
  /// non-mergeable, or nested-windowed inner names.
  static std::unique_ptr<SlidingWindowSummary> Create(
      std::string_view inner_name, const SummaryOptions& options,
      Status* status = nullptr);

  /// Hostile snapshot headers must not size an allocation: more buckets
  /// than this is refused at Create.
  static constexpr uint64_t kMaxBuckets = 1 << 16;

  // ---- Summary interface ------------------------------------------------

  /// "windowed:<inner>" — round-trips through snapshot headers.
  std::string_view Name() const override { return name_; }
  /// The construction options with the *effective* window geometry
  /// (window_size = bucket_width*B after rounding), so a snapshot header
  /// reconstructs an identical ring.
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight = 1) override;
  void UpdateBatch(std::span<const uint64_t> items) override;
  /// Same bucket-chunking as UpdateBatch, forwarding each chunk to the
  /// live bucket's columnar path so the inner structure's slice-tuned
  /// loop runs even inside a window.
  void UpdateColumn(const uint64_t* items, size_t n) override;

  /// Estimated frequency of `item` over the covered window (the last
  /// window_items() ingested items), in window units.
  double Estimate(uint64_t item) const override;

  /// Heavy hitters of the covered window at threshold phi * window_items(),
  /// under the eps' = eps + 1/B contract.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override;

  /// Total items ever ingested (the global stream position, NOT the
  /// window coverage — the engine's restore counters and the snapshot
  /// header both need the former; see window_items()).
  uint64_t ItemsProcessed() const override { return total_items_; }

  /// Reports answer for the covered window, not the whole history.
  uint64_t CoveredItems() const override { return window_items(); }

  size_t MemoryUsageBytes() const override;

  /// Bucket-wise merge with another window built over a disjoint,
  /// rotation-aligned substream (the per-shard windows of one engine, or
  /// one process's snapshot of the same monitored stream).  Requires the
  /// same inner structure, geometry, options, and *rotation count* —
  /// bucket i of one ring must cover the same global time range as bucket
  /// i of the other.  A pristine window (never updated, never rotated)
  /// adopts the other's alignment, which is how the engine's merged view
  /// bootstraps.
  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override;

  bool SupportsSnapshot() const override { return true; }
  /// Ring header (geometry echo, rotation count, total items) followed by
  /// every bucket's full payload oldest-to-live — including per-bucket
  /// PRNG state, so a restore mid-bucket continues exactly.
  Status SaveTo(BitWriter& out) const override;
  Status LoadFrom(BitReader& in) override;

  // ---- Window-specific surface ------------------------------------------

  /// Items currently covered by the ring: in [W - W/B, W) once warm, the
  /// whole history before the first eviction.  Queries answer for exactly
  /// this suffix of the ingested stream.
  uint64_t window_items() const;

  /// Effective window length W (a multiple of num_buckets()).
  uint64_t window_size() const { return bucket_width_ * buckets_.size(); }
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_width() const { return bucket_width_; }
  /// Bucket boundaries crossed so far; the ring-alignment token Merge
  /// compares.
  uint64_t rotations() const { return rotations_; }
  const std::string& inner_name() const { return inner_name_; }
  /// Items in the live (partial) bucket.
  uint64_t live_bucket_items() const;

  /// When true, Update/UpdateBatch never rotate; the owner calls Rotate()
  /// at its own (e.g. global-position) bucket boundaries.  The sharded
  /// engine sets this on per-shard windows so all K rings rotate in
  /// lockstep with the global stream.
  void set_external_rotation(bool external) { external_rotation_ = external; }
  bool external_rotation() const { return external_rotation_; }

  /// Advances the ring one bucket: evicts the oldest bucket, opens a
  /// fresh live one.  Called internally every bucket_width() updates
  /// unless external rotation is set.
  void Rotate();

  // ---- Incremental (delta) persistence ----------------------------------
  //
  // Sealed buckets are immutable: once the ring rotates past a bucket its
  // contents never change again (only its position shifts, identically on
  // writer and applier).  A checkpoint taken at rotation R0 therefore
  // determines every bucket except the ones sealed AFTER R0 plus the live
  // bucket — exactly `rotations() - R0 + 1` buckets — and a delta needs to
  // carry only those plus the clocks.  src/io/snapshot.h wraps these in a
  // self-describing CRC-sealed container (SaveSummaryDelta /
  // ApplySummaryDelta); docs/SNAPSHOTS.md#delta-snapshots has the format.

  /// Serializes the newest `bucket_count` buckets (oldest-to-live) —
  /// the tail that changed since a base checkpoint.  `bucket_count` must
  /// be in [1, num_buckets()].
  Status SaveTailTo(BitWriter& out, uint64_t bucket_count) const;

  /// Applies a delta onto this instance, which must be in the exact state
  /// the delta was computed against: rotations() == base_rotations and
  /// ItemsProcessed() == base_items.  Rotates the ring forward to
  /// new_rotations, replaces the newest `bucket_count` buckets from the
  /// reader, and sets the item clock to new_total_items.  Any mismatch is
  /// a Corruption (a delta chained onto the wrong base).
  Status ApplyTail(BitReader& in, uint64_t base_rotations,
                   uint64_t base_items, uint64_t new_rotations,
                   uint64_t new_total_items, uint64_t bucket_count);

 private:
  SlidingWindowSummary(std::string_view inner_name,
                       const SummaryOptions& options, uint64_t bucket_width,
                       size_t num_buckets);

  std::unique_ptr<Summary> MakeBucket() const;
  Summary& LiveBucket() { return *buckets_.back(); }
  const Summary& LiveBucket() const { return *buckets_.back(); }

  /// The invalidate-on-rotate merged-view cache (the ShardedEngine
  /// merge-epoch pattern): rebuilt only when items or rotations moved
  /// since the cached merge.
  const Summary& MergedWindow() const;
  void InvalidateCache() { merged_valid_ = false; }

  SummaryOptions options_;        // outer options, effective geometry
  SummaryOptions bucket_options_; // inner options (stream_length = W)
  std::string inner_name_;
  std::string name_;              // "windowed:" + inner_name_
  uint64_t bucket_width_ = 0;     // q = W / B
  uint64_t total_items_ = 0;      // ever ingested, across evictions
  uint64_t rotations_ = 0;
  bool external_rotation_ = false;

  // buckets_[0] is the oldest, buckets_.back() the live one; always
  // exactly B entries (young rings hold empty buckets).
  std::vector<std::unique_ptr<Summary>> buckets_;

  mutable std::unique_ptr<Summary> merged_;
  mutable uint64_t merged_items_ = 0;
  mutable uint64_t merged_rotations_ = 0;
  mutable bool merged_valid_ = false;
};

}  // namespace l1hh

#endif  // L1HH_WINDOW_SLIDING_WINDOW_SUMMARY_H_
