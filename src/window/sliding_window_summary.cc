#include "window/sliding_window_summary.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace l1hh {
namespace {

Status WindowIncompatibleMerge(std::string_view name) {
  return Status::InvalidArgument(
      "Merge requires another '" + std::string(name) +
      "' with the same geometry, options, and seed");
}

}  // namespace

std::unique_ptr<SlidingWindowSummary> SlidingWindowSummary::Create(
    std::string_view inner_name, const SummaryOptions& options,
    Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<SlidingWindowSummary> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  const std::string inner(inner_name);
  if (inner.empty() || IsWindowedSummaryName(inner)) {  // no nesting
    return fail(Status::InvalidArgument(
        "windowed: wraps one registered structure; '" + inner +
        "' is not a valid inner name"));
  }
  const uint64_t requested_w =
      options.window_size != 0
          ? options.window_size
          : (options.stream_length != 0 ? options.stream_length
                                        : uint64_t{1} << 20);
  const uint64_t requested_b =
      options.window_buckets != 0 ? options.window_buckets : 8;
  if (requested_b > kMaxBuckets) {
    return fail(Status::InvalidArgument(
        "window_buckets = " + std::to_string(requested_b) +
        " exceeds the maximum of " + std::to_string(kMaxBuckets)));
  }
  const uint64_t bucket_width = std::max<uint64_t>(1, requested_w / requested_b);

  std::unique_ptr<SlidingWindowSummary> window(new SlidingWindowSummary(
      inner_name, options, bucket_width,
      static_cast<size_t>(requested_b)));
  // Probe the inner structure through the bucket factory: it must exist
  // and be mergeable (queries merge the ring; a non-mergeable structure
  // has no window semantics to offer).
  auto probe = window->MakeBucket();
  if (probe == nullptr) {
    return fail(Status::InvalidArgument("unknown summary algorithm '" +
                                        inner + "'"));
  }
  if (!probe->SupportsMerge()) {
    return fail(Status::FailedPrecondition(
        "'" + inner +
        "' does not support Merge; a sliding window needs mergeable "
        "buckets (see docs/ALGORITHMS.md#mergeability)"));
  }
  window->buckets_.reserve(window->options_.window_buckets);
  window->buckets_.push_back(std::move(probe));
  while (window->buckets_.size() < window->options_.window_buckets) {
    window->buckets_.push_back(window->MakeBucket());
  }
  if (status != nullptr) *status = Status::Ok();
  return window;
}

SlidingWindowSummary::SlidingWindowSummary(std::string_view inner_name,
                                           const SummaryOptions& options,
                                           uint64_t bucket_width,
                                           size_t num_buckets)
    : options_(options),
      inner_name_(inner_name),
      name_(std::string(kWindowedPrefix) + std::string(inner_name)),
      bucket_width_(bucket_width) {
  // Normalize to the effective geometry so Options() (and therefore the
  // snapshot header) reconstructs an identical ring.
  options_.window_size = bucket_width_ * num_buckets;
  options_.window_buckets = num_buckets;
  // Inner buckets answer in window units: the window is their "stream".
  bucket_options_ = options_;
  bucket_options_.stream_length = options_.window_size;
  bucket_options_.window_size = 0;
  bucket_options_.window_buckets = 8;
}

std::unique_ptr<Summary> SlidingWindowSummary::MakeBucket() const {
  return MakeSummary(inner_name_, bucket_options_);
}

uint64_t SlidingWindowSummary::window_items() const {
  uint64_t covered = 0;
  for (const auto& bucket : buckets_) covered += bucket->ItemsProcessed();
  return covered;
}

uint64_t SlidingWindowSummary::live_bucket_items() const {
  return LiveBucket().ItemsProcessed();
}

void SlidingWindowSummary::Rotate() {
  // Evict the oldest bucket, open a fresh live one.  O(B) pointer moves —
  // trivial against the q items ingested between rotations.
  std::rotate(buckets_.begin(), buckets_.begin() + 1, buckets_.end());
  buckets_.back() = MakeBucket();
  ++rotations_;
  InvalidateCache();
  // One per bucket boundary (every bucket_width_ items) — cold enough to
  // count unconditionally.
  static obs::Counter* const rotations_ctr =
      obs::GetCounter("l1hh_window_rotations_total");
  rotations_ctr->Inc();
}

void SlidingWindowSummary::Update(uint64_t item, uint64_t weight) {
  if (weight == 0) return;
  InvalidateCache();
  if (external_rotation_) {
    LiveBucket().Update(item, weight);
    total_items_ += weight;
    return;
  }
  while (weight > 0) {
    const uint64_t fill = live_bucket_items();
    if (fill >= bucket_width_) {
      Rotate();
      continue;
    }
    const uint64_t take = std::min(weight, bucket_width_ - fill);
    LiveBucket().Update(item, take);
    total_items_ += take;
    weight -= take;
  }
}

void SlidingWindowSummary::UpdateBatch(std::span<const uint64_t> items) {
  if (items.empty()) return;
  InvalidateCache();
  if (external_rotation_) {
    LiveBucket().UpdateBatch(items);
    total_items_ += items.size();
    return;
  }
  size_t offset = 0;
  while (offset < items.size()) {
    const uint64_t fill = live_bucket_items();
    if (fill >= bucket_width_) {
      Rotate();
      continue;
    }
    const size_t take = static_cast<size_t>(std::min<uint64_t>(
        items.size() - offset, bucket_width_ - fill));
    LiveBucket().UpdateBatch(items.subspan(offset, take));
    total_items_ += take;
    offset += take;
  }
}

void SlidingWindowSummary::UpdateColumn(const uint64_t* items, size_t n) {
  if (n == 0) return;
  InvalidateCache();
  if (external_rotation_) {
    LiveBucket().UpdateColumn(items, n);
    total_items_ += n;
    return;
  }
  size_t offset = 0;
  while (offset < n) {
    const uint64_t fill = live_bucket_items();
    if (fill >= bucket_width_) {
      Rotate();
      continue;
    }
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(n - offset, bucket_width_ - fill));
    LiveBucket().UpdateColumn(items + offset, take);
    total_items_ += take;
    offset += take;
  }
}

const Summary& SlidingWindowSummary::MergedWindow() const {
  if (merged_valid_ && merged_items_ == total_items_ &&
      merged_rotations_ == rotations_) {
    return *merged_;
  }
  merged_ = MakeBucket();
  for (const auto& bucket : buckets_) {
    if (bucket->ItemsProcessed() == 0) continue;
    const Status s = merged_->Merge(*bucket);
    if (!s.ok()) {
      // Buckets are constructed from one shared option set, so an
      // incompatible bucket is a broken invariant, not an input error —
      // surface it loudly rather than serve a partial window.
      std::fprintf(stderr,
                   "SlidingWindowSummary: bucket merge failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
  }
  merged_items_ = total_items_;
  merged_rotations_ = rotations_;
  merged_valid_ = true;
  return *merged_;
}

double SlidingWindowSummary::Estimate(uint64_t item) const {
  return MergedWindow().Estimate(item);
}

std::vector<ItemEstimate> SlidingWindowSummary::HeavyHitters(
    double phi) const {
  return MergedWindow().HeavyHitters(phi);
}

size_t SlidingWindowSummary::MemoryUsageBytes() const {
  size_t total = sizeof(SlidingWindowSummary);
  for (const auto& bucket : buckets_) total += bucket->MemoryUsageBytes();
  if (merged_valid_) total += merged_->MemoryUsageBytes();
  return total;
}

Status SlidingWindowSummary::Merge(const Summary& other) {
  const auto* rhs = dynamic_cast<const SlidingWindowSummary*>(&other);
  if (rhs == nullptr || rhs->inner_name_ != inner_name_ ||
      rhs->bucket_width_ != bucket_width_ ||
      rhs->buckets_.size() != buckets_.size() ||
      !(rhs->options_ == options_)) {
    return WindowIncompatibleMerge(Name());
  }
  if (rhs->total_items_ == 0 && rhs->rotations_ == 0) {
    return Status::Ok();  // nothing to absorb
  }
  if (rotations_ != rhs->rotations_) {
    // Bucket i must cover the same global time range in both rings.  A
    // pristine ring has no time range yet and adopts the other's
    // alignment (how the engine's merged view bootstraps); anything else
    // is a caller error, not reconcilable state.
    if (total_items_ != 0 || rotations_ != 0) {
      return Status::InvalidArgument(
          "Merge requires rotation-aligned windows (this ring rotated " +
          std::to_string(rotations_) + " times, other " +
          std::to_string(rhs->rotations_) +
          "); windows merge only when driven by one global clock");
    }
    rotations_ = rhs->rotations_;
  }
  // Same options + seed => bucket factories draw identical hash/sampling
  // state, so the bucket-wise merges cannot fail on compatibility.
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (rhs->buckets_[i]->ItemsProcessed() == 0) continue;
    const Status s = buckets_[i]->Merge(*rhs->buckets_[i]);
    if (!s.ok()) return s;
  }
  total_items_ += rhs->total_items_;
  InvalidateCache();
  return Status::Ok();
}

Status SlidingWindowSummary::SaveTo(BitWriter& out) const {
  // Geometry echo first: LoadFrom re-verifies it against the instance the
  // header options constructed, same convention as every adapter.
  out.WriteU64(bucket_width_);
  out.WriteCounter(buckets_.size());
  out.WriteCounter(rotations_);
  out.WriteCounter(total_items_);
  for (const auto& bucket : buckets_) {
    const Status s = bucket->SaveTo(out);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status SlidingWindowSummary::LoadFrom(BitReader& in) {
  const uint64_t bucket_width = in.ReadU64();
  const uint64_t num_buckets = in.ReadCounter();
  const uint64_t rotations = in.ReadCounter();
  const uint64_t total_items = in.ReadCounter();
  if (in.overflow()) return in.status();
  if (bucket_width != bucket_width_ || num_buckets != buckets_.size()) {
    return Status::Corruption(
        "'" + name_ +
        "' snapshot payload does not match the shape implied by the "
        "header options");
  }
  std::vector<std::unique_ptr<Summary>> loaded;
  loaded.reserve(buckets_.size());
  uint64_t covered = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    auto bucket = MakeBucket();
    const Status s = bucket->LoadFrom(in);
    if (!s.ok()) return s;
    // No bucket can hold more than one bucket's worth of the stream;
    // a bigger claim is a tampered payload that would break rotation.
    if (bucket->ItemsProcessed() > bucket_width_) {
      return Status::Corruption(
          "'" + name_ + "' snapshot bucket " + std::to_string(i) +
          " claims " + std::to_string(bucket->ItemsProcessed()) +
          " items, more than the bucket width " +
          std::to_string(bucket_width_));
    }
    covered += bucket->ItemsProcessed();
    loaded.push_back(std::move(bucket));
  }
  if (total_items < covered) {
    return Status::Corruption(
        "'" + name_ + "' snapshot covers " + std::to_string(covered) +
        " items but claims only " + std::to_string(total_items) +
        " were ever ingested");
  }
  buckets_ = std::move(loaded);
  rotations_ = rotations;
  total_items_ = total_items;
  InvalidateCache();
  return Status::Ok();
}

Status SlidingWindowSummary::SaveTailTo(BitWriter& out,
                                        uint64_t bucket_count) const {
  if (bucket_count == 0 || bucket_count > buckets_.size()) {
    return Status::InvalidArgument(
        "delta bucket count " + std::to_string(bucket_count) +
        " is outside [1, " + std::to_string(buckets_.size()) + "]");
  }
  for (size_t i = buckets_.size() - static_cast<size_t>(bucket_count);
       i < buckets_.size(); ++i) {
    const Status s = buckets_[i]->SaveTo(out);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status SlidingWindowSummary::ApplyTail(BitReader& in,
                                       uint64_t base_rotations,
                                       uint64_t base_items,
                                       uint64_t new_rotations,
                                       uint64_t new_total_items,
                                       uint64_t bucket_count) {
  if (rotations_ != base_rotations || total_items_ != base_items) {
    return Status::Corruption(
        "'" + name_ + "' delta expects base state (rotations=" +
        std::to_string(base_rotations) + ", items=" +
        std::to_string(base_items) + "), this instance is at (rotations=" +
        std::to_string(rotations_) + ", items=" +
        std::to_string(total_items_) + "); not the delta's base");
  }
  // The dirty tail since the base is every bucket sealed after it plus
  // the live one — the writer's count must agree with the rotation
  // distance, and both must fit the ring.
  const uint64_t rotated = new_rotations - base_rotations;
  if (new_rotations < base_rotations || new_total_items < base_items ||
      bucket_count != rotated + 1 || bucket_count > buckets_.size()) {
    return Status::Corruption(
        "'" + name_ + "' delta clocks are implausible (rotations " +
        std::to_string(base_rotations) + " -> " +
        std::to_string(new_rotations) + ", " +
        std::to_string(bucket_count) + " buckets over a ring of " +
        std::to_string(buckets_.size()) + ")");
  }
  // Load the replacement tail into fresh buckets BEFORE touching the
  // ring, so a corrupt payload leaves this instance exactly as it was.
  std::vector<std::unique_ptr<Summary>> tail;
  tail.reserve(static_cast<size_t>(bucket_count));
  for (uint64_t i = 0; i < bucket_count; ++i) {
    auto bucket = MakeBucket();
    const Status s = bucket->LoadFrom(in);
    if (!s.ok()) return s;
    if (bucket->ItemsProcessed() > bucket_width_) {
      return Status::Corruption(
          "'" + name_ + "' delta bucket " + std::to_string(i) +
          " claims " + std::to_string(bucket->ItemsProcessed()) +
          " items, more than the bucket width " +
          std::to_string(bucket_width_));
    }
    tail.push_back(std::move(bucket));
  }
  for (uint64_t r = 0; r < rotated; ++r) Rotate();
  const size_t first = buckets_.size() - static_cast<size_t>(bucket_count);
  for (uint64_t i = 0; i < bucket_count; ++i) {
    buckets_[first + static_cast<size_t>(i)] =
        std::move(tail[static_cast<size_t>(i)]);
  }
  total_items_ = new_total_items;
  InvalidateCache();
  return Status::Ok();
}

namespace internal {

std::unique_ptr<Summary> MakeWindowedSummary(std::string_view inner_name,
                                             const SummaryOptions& options,
                                             Status* status) {
  return SlidingWindowSummary::Create(inner_name, options, status);
}

}  // namespace internal
}  // namespace l1hh
