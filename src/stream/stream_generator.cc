#include "stream/stream_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace l1hh {

PlantedStream MakePlantedStream(const PlantedSpec& spec, uint64_t seed) {
  Rng rng(seed);
  PlantedStream out;
  const uint64_t m = spec.stream_length;
  const uint64_t n = spec.universe_size;

  // Choose distinct planted ids.
  std::unordered_set<uint64_t> chosen;
  for (size_t i = 0; i < spec.planted_fractions.size(); ++i) {
    uint64_t id = rng.UniformU64(n);
    while (chosen.count(id) != 0) id = rng.UniformU64(n);
    chosen.insert(id);
    out.planted_ids.push_back(id);
  }

  uint64_t planted_total = 0;
  for (const double frac : spec.planted_fractions) {
    const auto count = static_cast<uint64_t>(
        std::llround(frac * static_cast<double>(m)));
    out.planted_counts.push_back(count);
    planted_total += count;
  }

  out.items.reserve(m);
  for (size_t i = 0; i < out.planted_ids.size(); ++i) {
    for (uint64_t c = 0; c < out.planted_counts[i]; ++c) {
      out.items.push_back(out.planted_ids[i]);
    }
  }
  // Background: uniform over non-planted ids.
  const uint64_t background = m > planted_total ? m - planted_total : 0;
  for (uint64_t i = 0; i < background; ++i) {
    uint64_t id = rng.UniformU64(n);
    while (chosen.count(id) != 0) id = rng.UniformU64(n);
    out.items.push_back(id);
  }

  switch (spec.order) {
    case StreamOrder::kShuffled: {
      for (size_t i = out.items.size(); i > 1; --i) {
        std::swap(out.items[i - 1], out.items[rng.UniformU64(i)]);
      }
      break;
    }
    case StreamOrder::kHeaviesFirst:
      // Already laid out planted-first.
      break;
    case StreamOrder::kHeaviesLast:
      std::rotate(out.items.begin(), out.items.begin() + planted_total,
                  out.items.end());
      break;
    case StreamOrder::kBursty:
      // Planted runs are contiguous already; shuffle only the background.
      for (size_t i = out.items.size(); i > planted_total + 1; --i) {
        const uint64_t j =
            planted_total + rng.UniformU64(i - planted_total);
        std::swap(out.items[i - 1], out.items[j]);
      }
      break;
  }
  return out;
}

DriftStream MakePlantedDriftStream(const DriftSpec& spec, uint64_t seed) {
  Rng rng(seed);
  DriftStream out;
  const size_t phases = std::max<size_t>(spec.phases, 1);
  const uint64_t m = spec.stream_length;
  const uint64_t n = spec.universe_size;

  // The rejection-sampling draws below terminate quickly only while the
  // planted union occupies a minority of the universe; a too-small
  // universe would otherwise HANG, so fail loudly up front.
  const uint64_t planted_needed =
      static_cast<uint64_t>(phases) * spec.planted_fractions.size();
  if (n <= 2 * planted_needed) {
    std::fprintf(stderr,
                 "MakePlantedDriftStream: universe_size %llu cannot hold "
                 "%llu disjoint planted ids plus background noise\n",
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(planted_needed));
    std::abort();
  }

  // Draw every phase's planted ids up front, disjoint across phases, so
  // an expired heavy can never reappear as a later phase's heavy or as
  // background noise.
  std::unordered_set<uint64_t> planted_union;
  out.planted_ids.resize(phases);
  for (size_t p = 0; p < phases; ++p) {
    for (size_t i = 0; i < spec.planted_fractions.size(); ++i) {
      uint64_t id = rng.UniformU64(n);
      while (planted_union.count(id) != 0) id = rng.UniformU64(n);
      planted_union.insert(id);
      out.planted_ids[p].push_back(id);
    }
  }

  out.planted_counts.resize(phases);
  out.items.reserve(m);
  for (size_t p = 0; p < phases; ++p) {
    const uint64_t phase_start = p * m / phases;
    const uint64_t phase_end = (p + 1) * m / phases;
    const uint64_t phase_length = phase_end - phase_start;
    // Record the ACTUAL offset, not the theoretical one: if the planted
    // fractions (over-)fill a phase, later switchpoints shift, and the
    // eviction tests slice the stream by these values.
    out.phase_starts.push_back(out.items.size());

    uint64_t planted_total = 0;
    for (const double frac : spec.planted_fractions) {
      const auto count = static_cast<uint64_t>(
          std::llround(frac * static_cast<double>(phase_length)));
      out.planted_counts[p].push_back(count);
      planted_total += count;
    }

    const size_t first = out.items.size();
    for (size_t i = 0; i < out.planted_ids[p].size(); ++i) {
      for (uint64_t c = 0; c < out.planted_counts[p][i]; ++c) {
        out.items.push_back(out.planted_ids[p][i]);
      }
    }
    const uint64_t background =
        phase_length > planted_total ? phase_length - planted_total : 0;
    for (uint64_t i = 0; i < background; ++i) {
      uint64_t id = rng.UniformU64(n);
      while (planted_union.count(id) != 0) id = rng.UniformU64(n);
      out.items.push_back(id);
    }
    // Shuffle within the phase only: the switchpoints stay exact.
    for (size_t i = out.items.size(); i > first + 1; --i) {
      const size_t j = first + rng.UniformU64(i - first);
      std::swap(out.items[i - 1], out.items[j]);
    }
  }
  return out;
}

std::vector<uint64_t> MakeZipfStream(uint64_t n, double alpha, uint64_t m,
                                     uint64_t seed) {
  Rng rng(seed);
  // The Zipf tables are O(support); for huge universes we cap the distinct
  // support (far more ranks than m draws can distinguish anyway) and
  // scatter the ranks across [0, n) with a mixer, so ids still exercise
  // the full id width without materializing the universe.
  const uint64_t support = std::min<uint64_t>(n, uint64_t{1} << 18);
  ZipfDistribution zipf(support, alpha);
  std::vector<uint64_t> stream;
  stream.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t rank = zipf.Sample(rng);
    stream.push_back(support == n ? rank : Mix64(rank ^ (seed * 31)) % n);
  }
  return stream;
}

std::vector<uint64_t> MakeUniformStream(uint64_t n, uint64_t m,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> stream;
  stream.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    stream.push_back(rng.UniformU64(n));
  }
  return stream;
}

}  // namespace l1hh
