#include "stream/stream_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace l1hh {

PlantedStream MakePlantedStream(const PlantedSpec& spec, uint64_t seed) {
  Rng rng(seed);
  PlantedStream out;
  const uint64_t m = spec.stream_length;
  const uint64_t n = spec.universe_size;

  // Choose distinct planted ids.
  std::unordered_set<uint64_t> chosen;
  for (size_t i = 0; i < spec.planted_fractions.size(); ++i) {
    uint64_t id = rng.UniformU64(n);
    while (chosen.count(id) != 0) id = rng.UniformU64(n);
    chosen.insert(id);
    out.planted_ids.push_back(id);
  }

  uint64_t planted_total = 0;
  for (const double frac : spec.planted_fractions) {
    const auto count = static_cast<uint64_t>(
        std::llround(frac * static_cast<double>(m)));
    out.planted_counts.push_back(count);
    planted_total += count;
  }

  out.items.reserve(m);
  for (size_t i = 0; i < out.planted_ids.size(); ++i) {
    for (uint64_t c = 0; c < out.planted_counts[i]; ++c) {
      out.items.push_back(out.planted_ids[i]);
    }
  }
  // Background: uniform over non-planted ids.
  const uint64_t background = m > planted_total ? m - planted_total : 0;
  for (uint64_t i = 0; i < background; ++i) {
    uint64_t id = rng.UniformU64(n);
    while (chosen.count(id) != 0) id = rng.UniformU64(n);
    out.items.push_back(id);
  }

  switch (spec.order) {
    case StreamOrder::kShuffled: {
      for (size_t i = out.items.size(); i > 1; --i) {
        std::swap(out.items[i - 1], out.items[rng.UniformU64(i)]);
      }
      break;
    }
    case StreamOrder::kHeaviesFirst:
      // Already laid out planted-first.
      break;
    case StreamOrder::kHeaviesLast:
      std::rotate(out.items.begin(), out.items.begin() + planted_total,
                  out.items.end());
      break;
    case StreamOrder::kBursty:
      // Planted runs are contiguous already; shuffle only the background.
      for (size_t i = out.items.size(); i > planted_total + 1; --i) {
        const uint64_t j =
            planted_total + rng.UniformU64(i - planted_total);
        std::swap(out.items[i - 1], out.items[j]);
      }
      break;
  }
  return out;
}

std::vector<uint64_t> MakeZipfStream(uint64_t n, double alpha, uint64_t m,
                                     uint64_t seed) {
  Rng rng(seed);
  // The Zipf tables are O(support); for huge universes we cap the distinct
  // support (far more ranks than m draws can distinguish anyway) and
  // scatter the ranks across [0, n) with a mixer, so ids still exercise
  // the full id width without materializing the universe.
  const uint64_t support = std::min<uint64_t>(n, uint64_t{1} << 18);
  ZipfDistribution zipf(support, alpha);
  std::vector<uint64_t> stream;
  stream.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t rank = zipf.Sample(rng);
    stream.push_back(support == n ? rank : Mix64(rank ^ (seed * 31)) % n);
  }
  return stream;
}

std::vector<uint64_t> MakeUniformStream(uint64_t n, uint64_t m,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> stream;
  stream.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    stream.push_back(rng.UniformU64(n));
  }
  return stream;
}

}  // namespace l1hh
