// Synthetic voting-stream workloads for the Borda/maximin problems.
//
//   * Uniform: votes are uniformly random permutations (no real winner).
//   * Mallows: votes concentrate around a hidden central ranking with
//     dispersion theta (standard model in computational social choice; the
//     paper's [DB15] uses it for winner prediction).
//   * Plackett–Luce: sampling without replacement proportional to item
//     weights.
//   * Planted-winner: one candidate is moved to the front of a fraction of
//     the votes, giving controlled Borda/maximin gaps.
#ifndef L1HH_STREAM_VOTE_GENERATOR_H_
#define L1HH_STREAM_VOTE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "votes/ranking.h"

namespace l1hh {

std::vector<Ranking> MakeUniformVotes(uint32_t n, uint64_t m, uint64_t seed);

/// Mallows model with central ranking = identity and dispersion phi in
/// (0, 1]: probability of ranking r proportional to phi^KendallTau(r, id).
/// Sampled exactly via the repeated-insertion method.
std::vector<Ranking> MakeMallowsVotes(uint32_t n, uint64_t m,
                                      double dispersion, uint64_t seed);

/// Plackett–Luce with geometric weights w_i = decay^i.
std::vector<Ranking> MakePlackettLuceVotes(uint32_t n, uint64_t m,
                                           double decay, uint64_t seed);

/// Uniform votes, but `winner` is promoted to the top in a `boost` fraction
/// of them.
std::vector<Ranking> MakePlantedWinnerVotes(uint32_t n, uint64_t m,
                                            uint32_t winner, double boost,
                                            uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_STREAM_VOTE_GENERATOR_H_
