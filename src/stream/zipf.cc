#include "stream/zipf.h"

#include <cmath>

namespace l1hh {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  double total = 0;
  for (const double w : weights) total += w;
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const uint32_t l : large) prob_[l] = 1.0;
  for (const uint32_t s : small) prob_[s] = 1.0;
}

uint64_t AliasTable::Sample(Rng& rng) const {
  const uint64_t i = rng.UniformU64(prob_.size());
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

ZipfDistribution::ZipfDistribution(uint64_t n, double alpha)
    : alpha_(alpha), probs_(n), alias_([n, alpha] {
        std::vector<double> w(n);
        for (uint64_t k = 0; k < n; ++k) {
          w[k] = std::pow(static_cast<double>(k + 1), -alpha);
        }
        return w;
      }()) {
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    probs_[k] = std::pow(static_cast<double>(k + 1), -alpha);
    total += probs_[k];
  }
  for (auto& p : probs_) p /= total;
}

}  // namespace l1hh
