#include "stream/vote_generator.h"

#include <algorithm>
#include <cmath>

namespace l1hh {

std::vector<Ranking> MakeUniformVotes(uint32_t n, uint64_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<Ranking> votes;
  votes.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    votes.push_back(Ranking::Random(n, rng));
  }
  return votes;
}

std::vector<Ranking> MakeMallowsVotes(uint32_t n, uint64_t m,
                                      double dispersion, uint64_t seed) {
  Rng rng(seed);
  std::vector<Ranking> votes;
  votes.reserve(m);
  // Repeated-insertion method (RIM): insert candidate i (0-based) at
  // position j (from the back) of the current prefix with probability
  // proportional to dispersion^(i - j).
  for (uint64_t v = 0; v < m; ++v) {
    std::vector<uint32_t> order;
    order.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      // Insertion position j in [0, i]: P(j) ~ dispersion^(i - j).
      // j = i means "at the end" (most consistent with identity).
      double total = 0;
      std::vector<double> w(i + 1);
      for (uint32_t j = 0; j <= i; ++j) {
        w[j] = std::pow(dispersion, static_cast<double>(i - j));
        total += w[j];
      }
      double u = rng.UniformDouble() * total;
      uint32_t j = 0;
      while (j < i && u > w[j]) {
        u -= w[j];
        ++j;
      }
      order.insert(order.begin() + j, i);
    }
    votes.emplace_back(std::move(order));
  }
  return votes;
}

std::vector<Ranking> MakePlackettLuceVotes(uint32_t n, uint64_t m,
                                           double decay, uint64_t seed) {
  Rng rng(seed);
  std::vector<Ranking> votes;
  votes.reserve(m);
  std::vector<double> base_weights(n);
  for (uint32_t i = 0; i < n; ++i) {
    base_weights[i] = std::pow(decay, static_cast<double>(i));
  }
  for (uint64_t v = 0; v < m; ++v) {
    std::vector<double> w = base_weights;
    std::vector<uint32_t> remaining(n);
    for (uint32_t i = 0; i < n; ++i) remaining[i] = i;
    std::vector<uint32_t> order;
    order.reserve(n);
    while (!remaining.empty()) {
      double total = 0;
      for (size_t i = 0; i < remaining.size(); ++i) total += w[remaining[i]];
      double u = rng.UniformDouble() * total;
      size_t pick = 0;
      while (pick + 1 < remaining.size() && u > w[remaining[pick]]) {
        u -= w[remaining[pick]];
        ++pick;
      }
      order.push_back(remaining[pick]);
      remaining.erase(remaining.begin() + static_cast<long>(pick));
    }
    votes.emplace_back(std::move(order));
  }
  return votes;
}

std::vector<Ranking> MakePlantedWinnerVotes(uint32_t n, uint64_t m,
                                            uint32_t winner, double boost,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Ranking> votes;
  votes.reserve(m);
  for (uint64_t v = 0; v < m; ++v) {
    Ranking r = Ranking::Random(n, rng);
    if (rng.UniformDouble() < boost) {
      std::vector<uint32_t> order = r.order();
      auto it = std::find(order.begin(), order.end(), winner);
      order.erase(it);
      order.insert(order.begin(), winner);
      r = Ranking(std::move(order));
    }
    votes.push_back(std::move(r));
  }
  return votes;
}

}  // namespace l1hh
