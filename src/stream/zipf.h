// Zipf / zeta distribution sampler over [0, n).
//
// P(item k) proportional to 1 / (k+1)^alpha.  Heavy-hitter workloads are
// classically Zipfian (the paper's motivating applications — IP traffic,
// iceberg queries — are); the benches sweep alpha to move between near
// uniform (alpha ~ 0) and extremely skewed (alpha ~ 2) streams.
//
// Sampling uses Walker's alias method: O(n) setup, O(1) per draw, so
// generating 10^8-item streams is cheap.
#ifndef L1HH_STREAM_ZIPF_H_
#define L1HH_STREAM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace l1hh {

class AliasTable {
 public:
  /// Builds from unnormalized weights.
  explicit AliasTable(const std::vector<double>& weights);

  uint64_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double alpha);

  uint64_t Sample(Rng& rng) const { return alias_.Sample(rng); }

  /// Exact probability of item k under the distribution.
  double Probability(uint64_t k) const { return probs_[k]; }

  uint64_t n() const { return probs_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> probs_;
  AliasTable alias_;
};

}  // namespace l1hh

#endif  // L1HH_STREAM_ZIPF_H_
