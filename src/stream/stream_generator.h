// Synthetic item-stream workloads.
//
// The paper evaluates nothing empirically (it is a theory paper); its
// guarantees are distribution-free.  These generators provide the workload
// suite the benches and tests sweep over:
//   * Uniform / Zipf draws,
//   * planted streams with exact target frequencies (the only way to test
//     the (eps, phi) contract precisely at the boundary),
//   * adversarial orders (heavies all first / all last / bursty), since the
//     paper explicitly makes no assumption on stream order.
#ifndef L1HH_STREAM_STREAM_GENERATOR_H_
#define L1HH_STREAM_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/zipf.h"
#include "util/random.h"

namespace l1hh {

enum class StreamOrder {
  kShuffled,     // uniformly random order
  kHeaviesFirst, // planted heavy items before all background items
  kHeaviesLast,  // background first, heavy items at the end
  kBursty,       // each item's occurrences contiguous
};

struct PlantedSpec {
  /// frequency[i] (as a fraction of m) for planted item i; the remainder of
  /// the stream is background noise spread over the rest of the universe.
  std::vector<double> planted_fractions;
  uint64_t universe_size = 1 << 20;
  uint64_t stream_length = 1 << 20;
  StreamOrder order = StreamOrder::kShuffled;
};

struct PlantedStream {
  std::vector<uint64_t> items;           // the stream itself
  std::vector<uint64_t> planted_ids;     // ids of the planted items
  std::vector<uint64_t> planted_counts;  // exact frequency of each
};

/// Builds a stream with exact planted frequencies.  Planted ids are chosen
/// uniformly from the universe (distinct); background items are drawn from
/// the remaining universe uniformly.
PlantedStream MakePlantedStream(const PlantedSpec& spec, uint64_t seed);

/// m draws from Zipf(alpha) over [0, n).
std::vector<uint64_t> MakeZipfStream(uint64_t n, double alpha, uint64_t m,
                                     uint64_t seed);

/// m uniform draws over [0, n).
std::vector<uint64_t> MakeUniformStream(uint64_t n, uint64_t m, uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_STREAM_STREAM_GENERATOR_H_
