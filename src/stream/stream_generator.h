// Synthetic item-stream workloads.
//
// The paper evaluates nothing empirically (it is a theory paper); its
// guarantees are distribution-free.  These generators provide the workload
// suite the benches and tests sweep over:
//   * Uniform / Zipf draws,
//   * planted streams with exact target frequencies (the only way to test
//     the (eps, phi) contract precisely at the boundary),
//   * adversarial orders (heavies all first / all last / bursty), since the
//     paper explicitly makes no assumption on stream order.
#ifndef L1HH_STREAM_STREAM_GENERATOR_H_
#define L1HH_STREAM_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stream/zipf.h"
#include "util/random.h"

namespace l1hh {

enum class StreamOrder {
  kShuffled,     // uniformly random order
  kHeaviesFirst, // planted heavy items before all background items
  kHeaviesLast,  // background first, heavy items at the end
  kBursty,       // each item's occurrences contiguous
};

struct PlantedSpec {
  /// frequency[i] (as a fraction of m) for planted item i; the remainder of
  /// the stream is background noise spread over the rest of the universe.
  std::vector<double> planted_fractions;
  uint64_t universe_size = 1 << 20;
  uint64_t stream_length = 1 << 20;
  StreamOrder order = StreamOrder::kShuffled;
};

struct PlantedStream {
  std::vector<uint64_t> items;           // the stream itself
  std::vector<uint64_t> planted_ids;     // ids of the planted items
  std::vector<uint64_t> planted_counts;  // exact frequency of each
};

/// Builds a stream with exact planted frequencies.  Planted ids are chosen
/// uniformly from the universe (distinct); background items are drawn from
/// the remaining universe uniformly.
PlantedStream MakePlantedStream(const PlantedSpec& spec, uint64_t seed);

// ---- Drift workloads (the sliding-window test/bench stimulus) ------------

struct DriftSpec {
  /// Per-phase planted frequencies, as fractions of the PHASE length; every
  /// phase plants a fresh, disjoint heavy set at these fractions.
  std::vector<double> planted_fractions;
  /// Number of phases; the heavy set switches at the phases-1 interior
  /// switchpoints (phase p covers positions [p*m/phases, (p+1)*m/phases)).
  size_t phases = 2;
  uint64_t universe_size = 1 << 20;
  uint64_t stream_length = 1 << 20;
};

struct DriftStream {
  std::vector<uint64_t> items;
  /// Start position of each phase (size == phases; phase p covers
  /// [phase_starts[p], phase_starts[p+1]) and the last runs to the end).
  std::vector<uint64_t> phase_starts;
  /// planted_ids[p][i] / planted_counts[p][i]: the exact heavy set of
  /// phase p.  Ids are distinct across ALL phases, and background noise
  /// avoids every planted id of every phase, so an expired heavy item has
  /// frequency exactly zero after its phase ends — the property the
  /// window-eviction tests assert on.
  std::vector<std::vector<uint64_t>> planted_ids;
  std::vector<std::vector<uint64_t>> planted_counts;
};

/// A planted stream whose heavy set changes at scheduled switchpoints:
/// each phase is an independent shuffled planted stream over a fresh heavy
/// set.  Continuous-monitoring workloads look like this — yesterday's hot
/// keys fade, today's take over — and a since-time-zero summary keeps
/// reporting the stale set while a windowed one must evict it within one
/// window (tests/windowed_conformance_test.cc).
DriftStream MakePlantedDriftStream(const DriftSpec& spec, uint64_t seed);

/// m draws from Zipf(alpha) over [0, n).
std::vector<uint64_t> MakeZipfStream(uint64_t n, double alpha, uint64_t m,
                                     uint64_t seed);

/// m uniform draws over [0, n).
std::vector<uint64_t> MakeUniformStream(uint64_t n, uint64_t m, uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_STREAM_STREAM_GENERATOR_H_
