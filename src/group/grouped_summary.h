// GroupedSummary — heavy hitters PER GROUP KEY, the deployment shape
// relational engines use for aggregate states (ClickHouse's
// AggregateFunctionAnyHeavy: column-slice add() over arena-backed
// per-group states; see docs/GROUPED.md).  One instance monitors a whole
// fleet — per tenant, per sensor, per route — by lazily materializing one
// factory-made Summary per observed group key:
//
//   * an open-addressing group table (power-of-two, linear probing over
//     Mix64(key), tombstones for evicted slots) maps key -> entry;
//   * entries live in a block-chained arena with a free list, so group
//     churn never touches the general-purpose allocator for node storage;
//   * every group's summary is built by MakeSummary(algorithm, options)
//     with a seed derived deterministically from (base seed, group key),
//     so a reloaded snapshot re-derives the exact same hash functions;
//   * an intrusive LRU list orders groups by recency, and eviction (by
//     group count and/or by a charged-bytes memory budget) always takes
//     the LRU tail — evicted groups are counted, not silently forgotten;
//   * Update(group, item) is the scalar path; UpdateColumn(groups, items,
//     n) is the columnar path, detecting runs of equal consecutive group
//     keys so sorted/clustered columns pay one table lookup and one inner
//     UpdateColumn per run.
//
// Snapshots: SaveGroups/LoadGroups move the complete state (totals,
// eviction counters, every live group's payload, MRU->LRU order) as a raw
// bit payload; the self-describing "L1HHGRUP" container around them lives
// in src/io/snapshot.h (SaveGrouped/LoadGrouped), version 3 of the
// snapshot family, so grouped state rides the existing durable-write and
// replication stack.  This header deliberately includes no io headers.
//
// Thread-safety: same contract as Summary — a GroupedSummary is a
// single-threaded object.
#ifndef L1HH_GROUP_GROUPED_SUMMARY_H_
#define L1HH_GROUP_GROUPED_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "summary/summary.h"
#include "util/bit_stream.h"
#include "util/status.h"

namespace l1hh {

struct GroupedSummaryOptions {
  /// Registry name of the per-group structure (any MakeSummary name,
  /// including "windowed:<algo>").
  std::string algorithm = "space_saving";
  /// Construction parameters for every per-group summary.  The seed is a
  /// BASE seed: group g's summary uses Mix64(seed ^ Mix64(g)), so groups
  /// draw independent hash functions yet reload deterministically.
  SummaryOptions summary;
  /// Maximum live groups; 0 means unlimited.  Exceeding it evicts the
  /// least-recently-updated group.
  uint64_t max_groups = 0;
  /// Budget on the charged footprint (entry overhead + each summary's
  /// MemoryUsageBytes, refreshed lazily); 0 means unlimited.  While over
  /// budget with more than one live group, LRU tails are evicted.
  uint64_t memory_budget_bytes = 0;
};

class GroupedSummary {
 public:
  /// One group's standing in TopGroups: its key and how many items this
  /// group ingested over the entry's lifetime.
  struct GroupStats {
    uint64_t group = 0;
    uint64_t items = 0;
  };

  /// Validates the options (the algorithm must be registered — probed by
  /// constructing one summary) and returns the instance, or nullptr with
  /// the reason in *status.
  static std::unique_ptr<GroupedSummary> Create(
      const GroupedSummaryOptions& options, Status* status = nullptr);

  ~GroupedSummary();
  GroupedSummary(const GroupedSummary&) = delete;
  GroupedSummary& operator=(const GroupedSummary&) = delete;

  /// One occurrence of `item` in group `group` (creates the group's
  /// summary on first sight; may evict the LRU tail afterwards).
  void Update(uint64_t group, uint64_t item);

  /// Columnar ingest: row i carries (groups[i], items[i]).  Runs of equal
  /// consecutive group keys share one table lookup and one inner
  /// UpdateColumn call; state-identical to the scalar Update loop.
  void UpdateColumn(const uint64_t* groups, const uint64_t* items, size_t n);

  /// The group's summary, or nullptr when the group was never seen (or
  /// has been evicted).  Valid until the next non-const call.
  const Summary* Find(uint64_t group) const;

  /// Estimated frequency of `item` within `group`; 0 for unknown groups.
  double Estimate(uint64_t group, uint64_t item) const;

  /// The group's (eps, phi)-heavy hitters, in that group's own stream
  /// units; empty for unknown groups.
  std::vector<ItemEstimate> HeavyHitters(uint64_t group, double phi) const;

  /// The k busiest live groups by ingested items, descending (ties by key
  /// ascending).  k == 0 returns all live groups.
  std::vector<GroupStats> TopGroups(size_t k) const;

  /// All live group keys, ascending.
  std::vector<uint64_t> GroupKeys() const;

  const GroupedSummaryOptions& options() const { return options_; }
  size_t group_count() const { return live_; }
  /// Total items ingested, INCLUDING items whose groups were later
  /// evicted (monotonic).
  uint64_t ItemsProcessed() const { return items_processed_; }
  uint64_t evicted_groups() const { return evicted_groups_; }
  uint64_t evicted_items() const { return evicted_items_; }
  /// The budget-charged footprint: per-entry overhead plus each group
  /// summary's MemoryUsageBytes (refreshed every kChargeInterval items
  /// per group, so it lags a little between refreshes).
  size_t charged_bytes() const { return charged_bytes_; }
  /// Charged footprint plus the table and arena block overhead.
  size_t MemoryUsageBytes() const;

  /// Items a group may ingest between refreshes of its charged bytes.
  static constexpr uint64_t kChargeInterval = 1024;

  /// Publishes this instance's gauges (live groups, charged/arena bytes)
  /// and the items-ingested delta since the last publish into the
  /// process-wide obs::Registry.  Eviction counters are maintained live
  /// (incremented inside EvictTail), so they need no publish step.
  void PublishMetrics() const;

  // ---- Raw snapshot payload (the "L1HHGRUP" container in src/io/ wraps
  // this with the name/options header, framing, and CRC) -----------------

  /// Appends totals, eviction counters, and every live group (key +
  /// bit-length-framed summary payload) in MRU->LRU order.
  void SaveGroups(BitWriter& out) const;

  /// Restores the payload written by SaveGroups into this instance (which
  /// must have been Created with the same options).  Existing groups are
  /// discarded first.  Hostile bits get Corruption, never UB: the group
  /// count and every per-group payload length are clamped against the
  /// remaining wire, and each group's summary must consume exactly its
  /// declared bits.
  Status LoadGroups(BitReader& in);

 private:
  struct GroupEntry {
    uint64_t key = 0;
    std::unique_ptr<Summary> summary;
    uint64_t items = 0;            // ingested into this entry's lifetime
    uint64_t uncharged_items = 0;  // since the last charge refresh
    size_t charged_bytes = 0;      // this entry's share of charged_bytes_
    GroupEntry* lru_prev = nullptr;
    GroupEntry* lru_next = nullptr;
  };

  /// Block-chained arena for group nodes: allocation bumps through
  /// fixed-size blocks, releases go to a free list for reuse, and all
  /// blocks are freed together at destruction.  Node storage never
  /// returns to the general-purpose allocator mid-run.
  class Arena {
   public:
    GroupEntry* Acquire();
    void Release(GroupEntry* entry);
    size_t allocated_bytes() const;

   private:
    static constexpr size_t kBlockEntries = 256;
    std::vector<std::unique_ptr<GroupEntry[]>> blocks_;
    size_t used_in_last_block_ = 0;
    std::vector<GroupEntry*> free_list_;
  };

  explicit GroupedSummary(const GroupedSummaryOptions& options);

  // Tombstone marker for table slots whose entry was evicted; probes
  // continue past it, inserts may reuse it.
  static GroupEntry* Tombstone() {
    return reinterpret_cast<GroupEntry*>(uintptr_t{1});
  }
  static bool IsLive(const GroupEntry* slot) {
    return slot != nullptr && slot != Tombstone();
  }

  GroupEntry* FindEntry(uint64_t group) const;
  /// Lookup or create-at-LRU-head; the only path that grows the table.
  GroupEntry* FindOrCreate(uint64_t group);
  /// Creates the entry (summary included) and links it where `at_tail`
  /// says — head for live ingest, tail for LoadGroups reconstruction.
  GroupEntry* CreateEntry(uint64_t group, bool at_tail);
  std::unique_ptr<Summary> MakeGroupSummary(uint64_t group) const;

  void InsertSlot(GroupEntry* entry);
  void MaybeGrowTable();
  void LinkHead(GroupEntry* entry);
  void LinkTail(GroupEntry* entry);
  void Unlink(GroupEntry* entry);
  void MoveToHead(GroupEntry* entry);
  void RefreshCharge(GroupEntry* entry);
  /// Post-ingest bookkeeping shared by Update and UpdateColumn: counts,
  /// recency, lazy charge refresh, then budget enforcement.
  void AfterIngest(GroupEntry* entry, uint64_t n);
  void EnforceBudget();
  void EvictTail();
  /// Drops every live group (LoadGroups starts from a clean slate).
  void Clear();

  GroupedSummaryOptions options_;
  std::vector<GroupEntry*> slots_;  // power-of-two open-addressing table
  size_t live_ = 0;
  size_t tombstones_ = 0;
  Arena arena_;
  GroupEntry* lru_head_ = nullptr;  // most recently updated
  GroupEntry* lru_tail_ = nullptr;  // eviction victim
  uint64_t items_processed_ = 0;
  uint64_t evicted_groups_ = 0;
  uint64_t evicted_items_ = 0;
  size_t charged_bytes_ = 0;
  // Items already folded into the registry's l1hh_group_items_total by
  // PublishMetrics (so repeated publishes stay monotone, not double
  // counted).
  mutable uint64_t published_items_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_GROUP_GROUPED_SUMMARY_H_
