#include "group/grouped_summary.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace l1hh {

namespace {

// Per-slot overhead a live group charges beyond its summary: the arena
// node plus its pointer in the open-addressing table.
constexpr size_t kEntryOverheadBytes =
    sizeof(void*) + 2 * sizeof(void*) + 4 * sizeof(uint64_t) + sizeof(size_t);

constexpr size_t kInitialSlots = 16;

}  // namespace

// ---- Arena ------------------------------------------------------------

GroupedSummary::GroupEntry* GroupedSummary::Arena::Acquire() {
  if (!free_list_.empty()) {
    GroupEntry* entry = free_list_.back();
    free_list_.pop_back();
    return entry;
  }
  if (blocks_.empty() || used_in_last_block_ == kBlockEntries) {
    blocks_.emplace_back(new GroupEntry[kBlockEntries]);
    used_in_last_block_ = 0;
  }
  return &blocks_.back()[used_in_last_block_++];
}

void GroupedSummary::Arena::Release(GroupEntry* entry) {
  // Drop the summary now (it owns real memory); the node itself stays in
  // its block and is recycled through the free list.
  entry->summary.reset();
  entry->lru_prev = entry->lru_next = nullptr;
  free_list_.push_back(entry);
}

size_t GroupedSummary::Arena::allocated_bytes() const {
  return blocks_.size() * kBlockEntries * sizeof(GroupEntry) +
         free_list_.capacity() * sizeof(GroupEntry*);
}

// ---- Construction -----------------------------------------------------

GroupedSummary::GroupedSummary(const GroupedSummaryOptions& options)
    : options_(options), slots_(kInitialSlots, nullptr) {}

GroupedSummary::~GroupedSummary() = default;

std::unique_ptr<GroupedSummary> GroupedSummary::Create(
    const GroupedSummaryOptions& options, Status* status) {
  // Probe the factory once so a typo'd algorithm fails at construction,
  // not on the first Update.
  Status make_status;
  auto probe = MakeSummary(options.algorithm, options.summary, &make_status);
  if (probe == nullptr) {
    if (status != nullptr) *status = std::move(make_status);
    return nullptr;
  }
  if (status != nullptr) *status = Status::Ok();
  return std::unique_ptr<GroupedSummary>(new GroupedSummary(options));
}

std::unique_ptr<Summary> GroupedSummary::MakeGroupSummary(
    uint64_t group) const {
  SummaryOptions per_group = options_.summary;
  // Independent hash draws per group, reconstructible from (base seed,
  // key) alone — a reloaded snapshot re-derives the same functions.
  per_group.seed = Mix64(options_.summary.seed ^ Mix64(group));
  return MakeSummary(options_.algorithm, per_group);
}

// ---- Table ------------------------------------------------------------

GroupedSummary::GroupEntry* GroupedSummary::FindEntry(uint64_t group) const {
  const size_t mask = slots_.size() - 1;
  size_t idx = static_cast<size_t>(Mix64(group)) & mask;
  while (slots_[idx] != nullptr) {
    GroupEntry* slot = slots_[idx];
    if (slot != Tombstone() && slot->key == group) return slot;
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

void GroupedSummary::InsertSlot(GroupEntry* entry) {
  const size_t mask = slots_.size() - 1;
  size_t idx = static_cast<size_t>(Mix64(entry->key)) & mask;
  while (IsLive(slots_[idx])) idx = (idx + 1) & mask;
  if (slots_[idx] == Tombstone()) --tombstones_;
  slots_[idx] = entry;
}

void GroupedSummary::MaybeGrowTable() {
  // Rehash when live + tombstones pass 70% load; tombstones are dropped
  // by the rebuild, so heavy eviction churn cannot degrade probes.
  if ((live_ + tombstones_ + 1) * 10 <= slots_.size() * 7) return;
  std::vector<GroupEntry*> old = std::move(slots_);
  size_t capacity = std::max(kInitialSlots, old.size());
  if (live_ * 10 > capacity * 5) capacity *= 2;
  slots_.assign(capacity, nullptr);
  tombstones_ = 0;
  for (GroupEntry* slot : old) {
    if (IsLive(slot)) InsertSlot(slot);
  }
}

GroupedSummary::GroupEntry* GroupedSummary::CreateEntry(uint64_t group,
                                                        bool at_tail) {
  MaybeGrowTable();
  GroupEntry* entry = arena_.Acquire();
  entry->key = group;
  entry->summary = MakeGroupSummary(group);
  entry->items = 0;
  entry->uncharged_items = 0;
  entry->charged_bytes = 0;
  entry->lru_prev = entry->lru_next = nullptr;
  InsertSlot(entry);
  ++live_;
  if (at_tail) {
    LinkTail(entry);
  } else {
    LinkHead(entry);
  }
  RefreshCharge(entry);
  return entry;
}

GroupedSummary::GroupEntry* GroupedSummary::FindOrCreate(uint64_t group) {
  GroupEntry* entry = FindEntry(group);
  return entry != nullptr ? entry : CreateEntry(group, /*at_tail=*/false);
}

// ---- LRU --------------------------------------------------------------

void GroupedSummary::LinkHead(GroupEntry* entry) {
  entry->lru_prev = nullptr;
  entry->lru_next = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev = entry;
  lru_head_ = entry;
  if (lru_tail_ == nullptr) lru_tail_ = entry;
}

void GroupedSummary::LinkTail(GroupEntry* entry) {
  entry->lru_next = nullptr;
  entry->lru_prev = lru_tail_;
  if (lru_tail_ != nullptr) lru_tail_->lru_next = entry;
  lru_tail_ = entry;
  if (lru_head_ == nullptr) lru_head_ = entry;
}

void GroupedSummary::Unlink(GroupEntry* entry) {
  if (entry->lru_prev != nullptr) {
    entry->lru_prev->lru_next = entry->lru_next;
  } else {
    lru_head_ = entry->lru_next;
  }
  if (entry->lru_next != nullptr) {
    entry->lru_next->lru_prev = entry->lru_prev;
  } else {
    lru_tail_ = entry->lru_prev;
  }
  entry->lru_prev = entry->lru_next = nullptr;
}

void GroupedSummary::MoveToHead(GroupEntry* entry) {
  if (lru_head_ == entry) return;
  Unlink(entry);
  LinkHead(entry);
}

// ---- Budget -----------------------------------------------------------

void GroupedSummary::RefreshCharge(GroupEntry* entry) {
  charged_bytes_ -= entry->charged_bytes;
  entry->charged_bytes =
      kEntryOverheadBytes + entry->summary->MemoryUsageBytes();
  charged_bytes_ += entry->charged_bytes;
  entry->uncharged_items = 0;
}

void GroupedSummary::AfterIngest(GroupEntry* entry, uint64_t n) {
  items_processed_ += n;
  entry->items += n;
  entry->uncharged_items += n;
  MoveToHead(entry);
  if (entry->uncharged_items >= kChargeInterval) RefreshCharge(entry);
  EnforceBudget();
}

void GroupedSummary::EnforceBudget() {
  while (options_.max_groups > 0 && live_ > options_.max_groups) {
    EvictTail();
  }
  // Never evict the last group: the just-updated entry is at the head,
  // and a budget smaller than one summary would otherwise thrash.
  while (options_.memory_budget_bytes > 0 && live_ > 1 &&
         charged_bytes_ > options_.memory_budget_bytes) {
    EvictTail();
  }
}

void GroupedSummary::EvictTail() {
  GroupEntry* victim = lru_tail_;
  if (victim == nullptr) return;
  // Tombstone the slot (probe chains through it must stay intact).
  const size_t mask = slots_.size() - 1;
  size_t idx = static_cast<size_t>(Mix64(victim->key)) & mask;
  while (slots_[idx] != victim) idx = (idx + 1) & mask;
  slots_[idx] = Tombstone();
  ++tombstones_;
  Unlink(victim);
  charged_bytes_ -= victim->charged_bytes;
  ++evicted_groups_;
  evicted_items_ += victim->items;
  --live_;
  // Eviction pressure is the signal operators watch for an undersized
  // budget; counted live (not just published at scrape time).
  obs::GetCounter("l1hh_group_evictions_total")->Inc();
  obs::GetCounter("l1hh_group_evicted_items_total")->Inc(victim->items);
  obs::Trace(obs::Severity::kDebug, "group.evict",
             static_cast<int64_t>(victim->key),
             static_cast<int64_t>(victim->items));
  arena_.Release(victim);
}

void GroupedSummary::PublishMetrics() const {
  obs::GetGauge("l1hh_group_live_groups")
      ->Set(static_cast<int64_t>(live_));
  obs::GetGauge("l1hh_group_charged_bytes")
      ->Set(static_cast<int64_t>(charged_bytes_));
  obs::GetGauge("l1hh_group_arena_bytes")
      ->Set(static_cast<int64_t>(arena_.allocated_bytes()));
  obs::GetCounter("l1hh_group_items_total")
      ->Inc(items_processed_ - published_items_);
  published_items_ = items_processed_;
}

void GroupedSummary::Clear() {
  while (lru_tail_ != nullptr) {
    GroupEntry* victim = lru_tail_;
    Unlink(victim);
    arena_.Release(victim);
  }
  slots_.assign(kInitialSlots, nullptr);
  live_ = 0;
  tombstones_ = 0;
  charged_bytes_ = 0;
}

// ---- Ingest -----------------------------------------------------------

void GroupedSummary::Update(uint64_t group, uint64_t item) {
  GroupEntry* entry = FindOrCreate(group);
  entry->summary->Update(item, 1);
  AfterIngest(entry, 1);
}

void GroupedSummary::UpdateColumn(const uint64_t* groups,
                                  const uint64_t* items, size_t n) {
  size_t i = 0;
  while (i < n) {
    // Run detection: sorted or clustered group columns (the common
    // output of an upstream GROUP BY or per-tenant batching) collapse to
    // one lookup + one columnar inner update per run.
    size_t j = i + 1;
    while (j < n && groups[j] == groups[i]) ++j;
    GroupEntry* entry = FindOrCreate(groups[i]);
    entry->summary->UpdateColumn(items + i, j - i);
    AfterIngest(entry, j - i);
    i = j;
  }
}

// ---- Queries ----------------------------------------------------------

const Summary* GroupedSummary::Find(uint64_t group) const {
  const GroupEntry* entry = FindEntry(group);
  return entry != nullptr ? entry->summary.get() : nullptr;
}

double GroupedSummary::Estimate(uint64_t group, uint64_t item) const {
  const Summary* summary = Find(group);
  return summary != nullptr ? summary->Estimate(item) : 0.0;
}

std::vector<ItemEstimate> GroupedSummary::HeavyHitters(uint64_t group,
                                                       double phi) const {
  const Summary* summary = Find(group);
  return summary != nullptr ? summary->HeavyHitters(phi)
                            : std::vector<ItemEstimate>{};
}

std::vector<GroupedSummary::GroupStats> GroupedSummary::TopGroups(
    size_t k) const {
  std::vector<GroupStats> out;
  out.reserve(live_);
  for (const GroupEntry* e = lru_head_; e != nullptr; e = e->lru_next) {
    out.push_back({e->key, e->items});
  }
  std::sort(out.begin(), out.end(),
            [](const GroupStats& a, const GroupStats& b) {
              return a.items > b.items ||
                     (a.items == b.items && a.group < b.group);
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

std::vector<uint64_t> GroupedSummary::GroupKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(live_);
  for (const GroupEntry* e = lru_head_; e != nullptr; e = e->lru_next) {
    keys.push_back(e->key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t GroupedSummary::MemoryUsageBytes() const {
  return charged_bytes_ + slots_.size() * sizeof(GroupEntry*) +
         arena_.allocated_bytes();
}

// ---- Snapshot payload -------------------------------------------------

void GroupedSummary::SaveGroups(BitWriter& out) const {
  out.WriteCounter(items_processed_);
  out.WriteCounter(evicted_groups_);
  out.WriteCounter(evicted_items_);
  out.WriteCounter(live_);
  // MRU -> LRU: LoadGroups appends each entry at the tail, so the
  // reloaded recency order (and therefore the next eviction victim) is
  // exactly the saved one.
  for (const GroupEntry* e = lru_head_; e != nullptr; e = e->lru_next) {
    out.WriteU64(e->key);
    out.WriteCounter(e->items);
    BitWriter payload;
    const Status saved = e->summary->SaveTo(payload);
    if (!saved.ok()) {
      // Create() verified the algorithm; a non-snapshot structure inside
      // a grouped save surfaces as a zero-length payload that LoadGroups
      // will reject loudly rather than silently drop.
      out.WriteCounter(0);
      continue;
    }
    out.WriteCounter(payload.size_bits());
    for (size_t bit = 0; bit < payload.size_bits(); bit += 64) {
      const int nbits =
          static_cast<int>(std::min<size_t>(64, payload.size_bits() - bit));
      out.WriteBits(payload.words()[bit / 64] &
                        (nbits == 64 ? ~uint64_t{0}
                                     : ((uint64_t{1} << nbits) - 1)),
                    nbits);
    }
  }
}

Status GroupedSummary::LoadGroups(BitReader& in) {
  Clear();
  items_processed_ = in.ReadCounter();
  evicted_groups_ = in.ReadCounter();
  evicted_items_ = in.ReadCounter();
  const uint64_t groups = in.CheckedCount(in.ReadCounter());
  for (uint64_t g = 0; g < groups && !in.overflow(); ++g) {
    const uint64_t key = in.ReadU64();
    const uint64_t items = in.ReadCounter();
    const uint64_t payload_bits = in.ReadCounter();
    if (in.overflow()) break;
    if (payload_bits == 0 || payload_bits > in.remaining_bits()) {
      Clear();
      return Status::Corruption(
          "grouped snapshot: group payload length exceeds the container");
    }
    if (FindEntry(key) != nullptr) {
      Clear();
      return Status::Corruption(
          "grouped snapshot: duplicate group key in payload");
    }
    GroupEntry* entry = CreateEntry(key, /*at_tail=*/true);
    const size_t before = in.position_bits();
    const Status loaded = entry->summary->LoadFrom(in);
    if (!loaded.ok()) {
      Clear();
      return loaded;
    }
    if (in.position_bits() - before != payload_bits) {
      // A payload that parses but with the wrong length means the framing
      // and the structure disagree — refuse rather than desync the next
      // group's fields.
      Clear();
      return Status::Corruption(
          "grouped snapshot: group payload length mismatch");
    }
    entry->items = items;
    RefreshCharge(entry);
  }
  if (in.overflow()) {
    Clear();
    return in.status();
  }
  return Status::Ok();
}

}  // namespace l1hh
